// Typed columnar storage for relational tables.
//
// A Column is an immutable, sealed vector of same-typed cells with an
// optional validity bitmap (absent bitmap == no nulls). Tables hold columns
// behind shared_ptr<const Column>, so operators that pass a column through
// unchanged (projection, rename, derive-one-column) share it zero-copy
// instead of deep-copying rows. Filters produce a SelectionVector of row
// indices and Gather() the surviving rows per column.
//
// Four typed layouts cover the schema types (Int64Column, DoubleColumn,
// BoolColumn, and StringColumn with offsets into a contiguous arena); a
// fifth, MixedColumn, preserves the legacy row-store permissiveness for
// cells that disagree with the declared column type. ColumnBuilder starts
// typed and silently promotes to mixed on the first mismatched cell, so
// AppendRow call sites keep their old semantics.
#ifndef HELIX_DATAFLOW_COLUMN_H_
#define HELIX_DATAFLOW_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/spans.h"
#include "dataflow/value.h"

namespace helix {
namespace dataflow {

/// Row indices selected by a filter kernel, ascending, in [0, num_rows).
using SelectionVector = std::vector<int64_t>;

/// Immutable same-typed cell vector with optional validity bitmap.
///
/// Thread safety: a Column is immutable after construction and safe to
/// read concurrently. Ownership: columns are shared between tables via
/// shared_ptr<const Column>; nothing ever mutates a published column.
class Column {
 public:
  /// Physical layout discriminator; doubles as the format-v2 on-disk tag.
  enum class Storage : uint8_t {
    kInt64 = 1,
    kDouble = 2,
    kBool = 3,
    kString = 4,
    /// Heterogeneous cells stored as tagged Values (legacy row semantics).
    kMixed = 5,
    /// Dictionary-encoded strings: per-row u32 codes into a shared
    /// distinct-entry dictionary (repeated categoricals).
    kDictString = 6,
  };

  virtual ~Column() = default;

  virtual Storage storage() const = 0;
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }

  /// True if cell `i` is null. Typed columns answer from the validity
  /// bitmap; MixedColumn from the cell itself.
  virtual bool IsNull(int64_t i) const {
    return !validity_.empty() &&
           (validity_[static_cast<size_t>(i) >> 3] &
            (1u << (static_cast<size_t>(i) & 7))) == 0;
  }

  /// Materializes cell `i` as a Value (the row-compatibility path; typed
  /// readers should downcast and read spans instead).
  virtual Value GetValue(int64_t i) const = 0;

  /// Stable per-cell hash, identical to Value::Hash() of GetValue(i).
  /// Table fingerprints combine these row-major, which keeps fingerprints
  /// byte-compatible with the pre-columnar row store (and thus with
  /// StoreEntry fingerprints persisted by older builds).
  virtual uint64_t CellHash(int64_t i) const = 0;

  /// Bulk CellHash over [begin, end) into `out` (fingerprint fast path).
  virtual void CellHashes(int64_t begin, int64_t end, uint64_t* out) const;

  /// Approximate in-memory footprint.
  virtual int64_t SizeBytes() const = 0;

  /// New column holding rows `sel` of this one, in order.
  virtual std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const = 0;

  /// Format-v2 wire form: storage tag, validity flag (+bitmap), packed
  /// body. Row count comes from the enclosing table header.
  void Serialize(ByteWriter* w) const;

  /// Same byte stream as Serialize, emitted as spans: header fields go
  /// through the scratch writer, large bodies are borrowed zero-copy.
  /// The column must outlive the span list.
  void SerializeToSpans(SpanWriter* s) const;

  /// Parses one format-v2 column of `num_rows` cells.
  static Result<std::shared_ptr<const Column>> Deserialize(ByteReader* r,
                                                           int64_t num_rows);

 protected:
  Column(int64_t length, std::vector<uint8_t> validity, int64_t null_count)
      : length_(length),
        validity_(std::move(validity)),
        null_count_(null_count) {}

  /// Packed cell body (everything after tag + validity).
  virtual void SerializeBody(ByteWriter* w) const = 0;

  /// Span form of SerializeBody; the default copies through the scratch
  /// writer, contiguous-body columns override to borrow.
  virtual void SerializeBodyToSpans(SpanWriter* s) const {
    SerializeBody(s->writer());
  }

  int64_t length_ = 0;
  /// Bit i set == cell i valid; empty == all valid. (length+7)/8 bytes.
  std::vector<uint8_t> validity_;
  int64_t null_count_ = 0;
};

/// int64 cells.
class Int64Column final : public Column {
 public:
  Int64Column(std::vector<int64_t> values, std::vector<uint8_t> validity,
              int64_t null_count)
      : Column(static_cast<int64_t>(values.size()), std::move(validity),
               null_count),
        values_(std::move(values)) {}

  Storage storage() const override { return Storage::kInt64; }
  const int64_t* data() const { return values_.data(); }
  int64_t value(int64_t i) const { return values_[static_cast<size_t>(i)]; }

  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;
  void SerializeBodyToSpans(SpanWriter* s) const override;

 private:
  std::vector<int64_t> values_;
};

/// double cells.
class DoubleColumn final : public Column {
 public:
  DoubleColumn(std::vector<double> values, std::vector<uint8_t> validity,
               int64_t null_count)
      : Column(static_cast<int64_t>(values.size()), std::move(validity),
               null_count),
        values_(std::move(values)) {}

  Storage storage() const override { return Storage::kDouble; }
  const double* data() const { return values_.data(); }
  double value(int64_t i) const { return values_[static_cast<size_t>(i)]; }

  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;
  void SerializeBodyToSpans(SpanWriter* s) const override;

 private:
  std::vector<double> values_;
};

/// bool cells (one byte per cell).
class BoolColumn final : public Column {
 public:
  BoolColumn(std::vector<uint8_t> values, std::vector<uint8_t> validity,
             int64_t null_count)
      : Column(static_cast<int64_t>(values.size()), std::move(validity),
               null_count),
        values_(std::move(values)) {}

  Storage storage() const override { return Storage::kBool; }
  bool value(int64_t i) const { return values_[static_cast<size_t>(i)] != 0; }

  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;
  void SerializeBodyToSpans(SpanWriter* s) const override;

 private:
  std::vector<uint8_t> values_;
};

/// String cells: one contiguous arena plus length+1 offsets into it.
class StringColumn final : public Column {
 public:
  StringColumn(std::string arena, std::vector<uint64_t> offsets,
               std::vector<uint8_t> validity, int64_t null_count)
      : Column(static_cast<int64_t>(offsets.empty() ? 0 : offsets.size() - 1),
               std::move(validity), null_count),
        arena_(std::move(arena)),
        offsets_(std::move(offsets)) {}

  Storage storage() const override { return Storage::kString; }
  std::string_view view(int64_t i) const {
    size_t b = static_cast<size_t>(offsets_[static_cast<size_t>(i)]);
    size_t e = static_cast<size_t>(offsets_[static_cast<size_t>(i) + 1]);
    return std::string_view(arena_).substr(b, e - b);
  }
  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;
  void SerializeBodyToSpans(SpanWriter* s) const override;

 private:
  std::string arena_;
  std::vector<uint64_t> offsets_;  // length()+1, ascending, last == arena size
};

/// The shared distinct-entry table behind one or more DictionaryColumns:
/// D entries in first-occurrence order (arena + D+1 offsets), plus each
/// entry's cached cell hash so fingerprints cost one array lookup per
/// row instead of one string hash. Immutable once published; gathered
/// columns share it zero-copy.
struct StringDict {
  std::string arena;
  std::vector<uint64_t> offsets;  // D+1, ascending, last == arena size
  std::vector<uint64_t> hashes;   // D cached string cell hashes

  int64_t num_entries() const {
    return offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  }
  std::string_view entry(uint32_t code) const {
    size_t b = static_cast<size_t>(offsets[code]);
    size_t e = static_cast<size_t>(offsets[code + 1]);
    return std::string_view(arena).substr(b, e - b);
  }
};

/// Dictionary-encoded string cells: per-row u32 codes into a shared
/// StringDict. Value-identical to the StringColumn holding the same
/// cells — GetValue, CellHash, and the table fingerprint are
/// bit-compatible — only the storage (and the format-v2 tag) differ.
/// Null cells carry the code of the empty-string entry, so view(i)
/// returns "" for nulls exactly like StringColumn does.
class DictionaryColumn final : public Column {
 public:
  DictionaryColumn(std::shared_ptr<const StringDict> dict,
                   std::vector<uint32_t> codes,
                   std::vector<uint8_t> validity, int64_t null_count)
      : Column(static_cast<int64_t>(codes.size()), std::move(validity),
               null_count),
        dict_(std::move(dict)),
        codes_(std::move(codes)) {}

  Storage storage() const override { return Storage::kDictString; }
  const StringDict& dict() const { return *dict_; }
  const std::shared_ptr<const StringDict>& shared_dict() const {
    return dict_;
  }
  const uint32_t* codes() const { return codes_.data(); }
  uint32_t code(int64_t i) const { return codes_[static_cast<size_t>(i)]; }
  std::string_view view(int64_t i) const {
    return dict_->entry(codes_[static_cast<size_t>(i)]);
  }

  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  void CellHashes(int64_t begin, int64_t end, uint64_t* out) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;
  void SerializeBodyToSpans(SpanWriter* s) const override;

 private:
  std::shared_ptr<const StringDict> dict_;
  std::vector<uint32_t> codes_;
};

/// Tagged-Value cells: the escape hatch for columns whose cells disagree
/// with the declared schema type (the old row store allowed this freely).
class MixedColumn final : public Column {
 public:
  explicit MixedColumn(std::vector<Value> values);

  Storage storage() const override { return Storage::kMixed; }
  const Value& value(int64_t i) const {
    return values_[static_cast<size_t>(i)];
  }

  bool IsNull(int64_t i) const override {
    return values_[static_cast<size_t>(i)].is_null();
  }
  Value GetValue(int64_t i) const override;
  uint64_t CellHash(int64_t i) const override;
  int64_t SizeBytes() const override;
  std::shared_ptr<const Column> Gather(
      const SelectionVector& sel) const override;

 protected:
  void SerializeBody(ByteWriter* w) const override;

 private:
  std::vector<Value> values_;
};

/// Accumulates cells for one column, then seals them into an immutable
/// Column. Starts on the typed layout matching the declared schema type
/// and promotes to MixedColumn on the first cell of another type.
///
/// Not thread-safe; builders are single-owner by construction.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(ValueType declared_type);

  int64_t length() const { return length_; }
  void Reserve(int64_t n);

  /// Generic append (row-compatibility path); never fails.
  void Append(const Value& v);
  void AppendNull();

  /// Typed fast paths; a type mismatch with the current layout degrades
  /// to the generic path (promoting to mixed) rather than erroring.
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string_view v);

  /// Cell read-back while still building (row-compatibility path).
  Value ValueAt(int64_t i) const;

  /// Seals accumulated cells into a column and resets the builder.
  std::shared_ptr<const Column> Finish();

  /// A builder pre-seeded with `column`'s cells (unseal-for-append path).
  static std::unique_ptr<ColumnBuilder> FromColumn(const Column& column);

  /// Dictionary auto-encoding policy (deterministic functions of the
  /// cell sequence, so row-built and column-built tables serialize
  /// byte-identically): a string builder interns incrementally and
  /// abandons encoding past kMaxDictDistinct distinct entries; Finish
  /// emits a DictionaryColumn only when the table is long enough and
  /// repetitive enough for codes to pay for the dictionary.
  static constexpr int64_t kMaxDictDistinct = 4096;
  static constexpr int64_t kMinDictRows = 16;

 private:
  void MarkValid();
  void MarkNull();
  void PromoteToMixed();
  bool mixed() const { return storage_ == Column::Storage::kMixed; }

  /// Interns `v` into the distinct-entry arena and stores its code in
  /// `*code`. Returns false (after AbandonDict expands the codes into a
  /// plain arena) when a NEW entry would pass kMaxDictDistinct.
  bool TryInternDictEntry(std::string_view v, uint32_t* code);
  void AbandonDict();
  /// The one string-cell append path (null cells intern ""), shared by
  /// AppendString / Append / AppendNull.
  void AppendStringCell(std::string_view v);

  ValueType declared_type_;
  Column::Storage storage_;
  int64_t length_ = 0;
  int64_t null_count_ = 0;
  std::vector<uint8_t> validity_;  // built lazily on first null

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::string arena_;
  std::vector<uint64_t> offsets_;
  std::vector<Value> values_;  // mixed layout

  /// Dictionary mode (string builders start here): arena_/offsets_ hold
  /// the DISTINCT entries in first-occurrence order, codes_ holds one
  /// code per appended cell, slots_ is the open-addressing intern table
  /// (entry code + 1; 0 == empty slot).
  bool dict_mode_ = false;
  std::vector<uint32_t> codes_;
  std::vector<uint32_t> slots_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_COLUMN_H_
