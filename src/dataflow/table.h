// Relational table payload: the human-readable pre-processing format.
//
// Since the columnar refactor a table is a schema plus one immutable
// Column per field (dataflow/column.h), shared between tables via
// shared_ptr<const Column> so projection-style operators are zero-copy.
// A row-compatibility surface (AppendRow / at / RowCursor) remains for
// call sites that still think in rows; it materializes Values per cell
// and is the slow path — kernels should read typed columns.
//
// Mutation model: a table is *building* (per-column ColumnBuilders accept
// AppendRow) until sealed, and *sealed* (immutable columns) afterwards.
// Any read seals lazily; DataCollection::FromTable seals eagerly because
// published payloads are read concurrently. AppendRow on a sealed table
// unseals by copying columns back into builders (rare, test-only path).
// A building table is single-owner and NOT thread-safe; a sealed table is
// immutable and safe to share.
#ifndef HELIX_DATAFLOW_TABLE_H_
#define HELIX_DATAFLOW_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/column.h"
#include "dataflow/payload.h"
#include "dataflow/schema.h"
#include "dataflow/value.h"

namespace helix {
namespace dataflow {

using Row = std::vector<Value>;

class RowCursor;

/// A schema'd columnar table.
class TableData final : public DataPayload {
 public:
  TableData() = default;
  explicit TableData(Schema schema);
  TableData(Schema schema, std::vector<Row> rows);

  /// Builds a sealed table directly from columns. Fails unless every
  /// column's length matches and the column count equals the schema's.
  /// Columns may be shared with other tables (zero-copy).
  static Result<std::shared_ptr<TableData>> FromColumns(
      Schema schema, std::vector<std::shared_ptr<const Column>> columns);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }

  /// Cell accessor; requires valid indices. Materializes a Value (string
  /// cells copy) — row-compatibility path, not for hot loops.
  Value at(int64_t r, int c) const;

  /// Appends a row; fails if arity does not match the schema. Unseals a
  /// sealed table (copies columns into builders) on first use.
  Status AppendRow(Row row);

  /// Reserves row capacity (ingestion fast path).
  void Reserve(int64_t n);

  /// Shared handle to the column at index `c` (seals). Never deep-copies.
  std::shared_ptr<const class Column> column(int c) const;

  /// Shared handle to the column named `name`, or NotFound.
  Result<std::shared_ptr<const class Column>> Column(
      const std::string& name) const;

  /// New table holding rows `sel` (ascending indices into this table),
  /// gathering every column.
  std::shared_ptr<TableData> Filter(const SelectionVector& sel) const;

  /// Seals builders into immutable columns; idempotent. Must be called
  /// (directly or via any read accessor) before sharing across threads.
  void Seal() const;

  PayloadKind kind() const override { return PayloadKind::kTable; }
  int64_t SizeBytes() const override;
  /// Row-major per-cell hash, bit-identical to the pre-columnar row store
  /// (persisted StoreEntry fingerprints from older builds must keep
  /// verifying against reloaded payloads).
  uint64_t Fingerprint() const override;
  /// Format-v2 body: schema, row count, then column-contiguous payloads.
  void Serialize(ByteWriter* w) const override;
  /// Same bytes as Serialize, but column bodies (value arrays, string
  /// arenas, dictionary codes) are borrowed into the span list instead of
  /// copied — the zero-copy reply path. The table must outlive the spans.
  void SerializeToSpans(SpanWriter* s) const override;
  std::string DebugString() const override;

  /// Parses a table body in the given envelope format version (1 =
  /// row-major tagged cells, 2 = columnar).
  static Result<std::shared_ptr<TableData>> Deserialize(
      ByteReader* r, uint32_t format_version = 2);

 private:
  void Unseal();

  Schema schema_;
  int64_t num_rows_ = 0;
  // Exactly one of columns_/builders_ is populated for tables with fields
  // (both empty for zero-field tables). Mutable: reads seal lazily; see
  // the threading contract in the class comment.
  mutable std::vector<std::shared_ptr<const class Column>> columns_;
  mutable std::vector<std::unique_ptr<ColumnBuilder>> builders_;
};

/// Forward row-wise iteration over a sealed table — the compatibility
/// view for call sites migrating off the row store incrementally.
///
///   for (RowCursor cur(table); cur.Valid(); cur.Next()) {
///     Value v = cur.value(0);
///   }
class RowCursor {
 public:
  explicit RowCursor(const TableData& table) : table_(&table) {
    table.Seal();
  }

  bool Valid() const { return row_ < table_->num_rows(); }
  void Next() { ++row_; }
  int64_t row() const { return row_; }
  /// Materializes the cell at the cursor row (string cells copy).
  Value value(int c) const { return table_->at(row_, c); }

 private:
  const TableData* table_;
  int64_t row_ = 0;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_TABLE_H_
