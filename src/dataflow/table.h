// Relational table payload: the human-readable pre-processing format.
#ifndef HELIX_DATAFLOW_TABLE_H_
#define HELIX_DATAFLOW_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/payload.h"
#include "dataflow/schema.h"
#include "dataflow/value.h"

namespace helix {
namespace dataflow {

using Row = std::vector<Value>;

/// A schema'd row store.
class TableData final : public DataPayload {
 public:
  TableData() = default;
  explicit TableData(Schema schema) : schema_(std::move(schema)) {}
  TableData(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }

  /// Cell accessor; requires valid indices.
  const Value& at(int64_t r, int c) const {
    return rows_[static_cast<size_t>(r)][static_cast<size_t>(c)];
  }

  /// Appends a row; fails if arity does not match the schema.
  Status AppendRow(Row row);

  /// Reserves row capacity (ingestion fast path).
  void Reserve(int64_t n) { rows_.reserve(static_cast<size_t>(n)); }

  /// Entire column by name.
  Result<std::vector<Value>> Column(const std::string& name) const;

  PayloadKind kind() const override { return PayloadKind::kTable; }
  int64_t SizeBytes() const override;
  uint64_t Fingerprint() const override;
  void Serialize(ByteWriter* w) const override;
  std::string DebugString() const override;

  static Result<std::shared_ptr<TableData>> Deserialize(ByteReader* r);

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_TABLE_H_
