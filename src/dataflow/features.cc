#include "dataflow/features.h"

#include <algorithm>

#include "common/hash.h"

namespace helix {
namespace dataflow {

int32_t FeatureDict::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  int32_t id = static_cast<int32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

int32_t FeatureDict::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

uint64_t FeatureDict::Fingerprint() const {
  Hasher h;
  h.AddU64(names_.size());
  for (const std::string& n : names_) {
    h.Add(n);
  }
  return h.Digest();
}

int64_t FeatureDict::SizeBytes() const {
  int64_t bytes = 64;
  for (const std::string& n : names_) {
    bytes += 48 + static_cast<int64_t>(n.size());
  }
  return bytes;
}

void FeatureDict::Serialize(ByteWriter* w) const {
  w->PutU64(names_.size());
  for (const std::string& n : names_) {
    w->PutString(n);
  }
}

Result<FeatureDict> FeatureDict::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 28)) {
    return Status::Corruption("implausible feature dict size");
  }
  FeatureDict dict;
  for (uint64_t i = 0; i < n; ++i) {
    HELIX_ASSIGN_OR_RETURN(std::string name, r->GetString());
    dict.Intern(name);
  }
  if (dict.size() != static_cast<int32_t>(n)) {
    return Status::Corruption("duplicate names in serialized feature dict");
  }
  return dict;
}

void SparseVector::Set(int32_t index, double value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const auto& e, int32_t i) { return e.first < i; });
  if (it != entries_.end() && it->first == index) {
    it->second = value;
  } else {
    entries_.insert(it, {index, value});
  }
}

void SparseVector::Add(int32_t index, double delta) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const auto& e, int32_t i) { return e.first < i; });
  if (it != entries_.end() && it->first == index) {
    it->second += delta;
  } else {
    entries_.insert(it, {index, delta});
  }
}

double SparseVector::Get(int32_t index) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const auto& e, int32_t i) { return e.first < i; });
  if (it != entries_.end() && it->first == index) {
    return it->second;
  }
  return 0.0;
}

double SparseVector::Dot(const std::vector<double>& dense) const {
  double sum = 0.0;
  for (const auto& [idx, val] : entries_) {
    if (static_cast<size_t>(idx) < dense.size()) {
      sum += dense[static_cast<size_t>(idx)] * val;
    }
  }
  return sum;
}

void SparseVector::AddTo(std::vector<double>* dense, double scale) const {
  if (entries_.empty()) {
    return;
  }
  size_t needed = static_cast<size_t>(entries_.back().first) + 1;
  if (dense->size() < needed) {
    dense->resize(needed, 0.0);
  }
  for (const auto& [idx, val] : entries_) {
    (*dense)[static_cast<size_t>(idx)] += scale * val;
  }
}

double SparseVector::L2NormSquared() const {
  double sum = 0.0;
  for (const auto& [idx, val] : entries_) {
    (void)idx;
    sum += val * val;
  }
  return sum;
}

uint64_t SparseVector::Fingerprint() const {
  Hasher h;
  h.AddU64(entries_.size());
  for (const auto& [idx, val] : entries_) {
    h.AddI64(idx).AddDouble(val);
  }
  return h.Digest();
}

void SparseVector::Serialize(ByteWriter* w) const {
  w->PutU64(entries_.size());
  for (const auto& [idx, val] : entries_) {
    w->PutI64(idx);
    w->PutDouble(val);
  }
}

Result<SparseVector> SparseVector::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 30)) {
    return Status::Corruption("implausible sparse vector size");
  }
  SparseVector v;
  int64_t prev = -1;
  for (uint64_t i = 0; i < n; ++i) {
    HELIX_ASSIGN_OR_RETURN(int64_t idx, r->GetI64());
    HELIX_ASSIGN_OR_RETURN(double val, r->GetDouble());
    if (idx <= prev || idx > INT32_MAX) {
      return Status::Corruption("sparse vector indices not increasing");
    }
    prev = idx;
    v.entries_.emplace_back(static_cast<int32_t>(idx), val);
  }
  return v;
}

}  // namespace dataflow
}  // namespace helix
