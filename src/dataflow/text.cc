#include "dataflow/text.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

int64_t TextData::SizeBytes() const {
  int64_t bytes = 64;
  for (const Document& d : docs_) {
    bytes += 64 + static_cast<int64_t>(d.id.size() + d.text.size());
    bytes += static_cast<int64_t>(d.spans.size()) * 24;
    for (const Span& s : d.spans) {
      bytes += static_cast<int64_t>(s.label.size());
    }
  }
  return bytes;
}

uint64_t TextData::Fingerprint() const {
  Hasher h;
  h.AddU64(docs_.size());
  for (const Document& d : docs_) {
    h.Add(d.id).Add(d.text).AddU64(d.spans.size());
    for (const Span& s : d.spans) {
      h.AddI64(s.begin).AddI64(s.end).Add(s.label);
    }
  }
  return h.Digest();
}

void TextData::Serialize(ByteWriter* w) const {
  w->PutU64(docs_.size());
  for (const Document& d : docs_) {
    w->PutString(d.id);
    w->PutString(d.text);
    w->PutU64(d.spans.size());
    for (const Span& s : d.spans) {
      w->PutI64(s.begin);
      w->PutI64(s.end);
      w->PutString(s.label);
    }
  }
}

std::string TextData::DebugString() const {
  int64_t total_spans = 0;
  for (const Document& d : docs_) {
    total_spans += static_cast<int64_t>(d.spans.size());
  }
  return StrFormat("text(%lld docs, %lld spans)",
                   static_cast<long long>(num_docs()),
                   static_cast<long long>(total_spans));
}

Result<std::shared_ptr<TextData>> TextData::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 28)) {
    return Status::Corruption("implausible doc count");
  }
  auto text = std::make_shared<TextData>();
  for (uint64_t i = 0; i < n; ++i) {
    Document d;
    HELIX_ASSIGN_OR_RETURN(d.id, r->GetString());
    HELIX_ASSIGN_OR_RETURN(d.text, r->GetString());
    HELIX_ASSIGN_OR_RETURN(uint64_t num_spans, r->GetU64());
    if (num_spans > (1ULL << 28)) {
      return Status::Corruption("implausible span count");
    }
    d.spans.reserve(num_spans);
    for (uint64_t j = 0; j < num_spans; ++j) {
      Span s;
      HELIX_ASSIGN_OR_RETURN(int64_t begin, r->GetI64());
      HELIX_ASSIGN_OR_RETURN(int64_t end, r->GetI64());
      HELIX_ASSIGN_OR_RETURN(s.label, r->GetString());
      s.begin = static_cast<int32_t>(begin);
      s.end = static_cast<int32_t>(end);
      d.spans.push_back(std::move(s));
    }
    text->AddDoc(std::move(d));
  }
  return text;
}

}  // namespace dataflow
}  // namespace helix
