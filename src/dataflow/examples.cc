#include "dataflow/examples.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

int64_t ExamplesData::SizeBytes() const {
  int64_t bytes = 64 + dict_->SizeBytes();
  for (const Example& e : examples_) {
    bytes += 32 + static_cast<int64_t>(e.features.num_entries()) * 16;
  }
  return bytes;
}

uint64_t ExamplesData::Fingerprint() const {
  Hasher h;
  h.AddU64(dict_->Fingerprint());
  h.AddU64(examples_.size());
  for (const Example& e : examples_) {
    h.AddU64(e.features.Fingerprint())
        .AddDouble(e.label)
        .AddI64(e.id)
        .AddBool(e.is_test);
  }
  return h.Digest();
}

void ExamplesData::Serialize(ByteWriter* w) const {
  dict_->Serialize(w);
  w->PutU64(examples_.size());
  for (const Example& e : examples_) {
    e.features.Serialize(w);
    w->PutDouble(e.label);
    w->PutI64(e.id);
    w->PutBool(e.is_test);
  }
}

std::string ExamplesData::DebugString() const {
  return StrFormat("examples(%lld rows, %d features)",
                   static_cast<long long>(num_examples()), num_features());
}

Result<std::shared_ptr<ExamplesData>> ExamplesData::Deserialize(
    ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(FeatureDict dict, FeatureDict::Deserialize(r));
  auto data =
      std::make_shared<ExamplesData>(std::make_shared<FeatureDict>(dict));
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 32)) {
    return Status::Corruption("implausible example count");
  }
  data->Reserve(static_cast<int64_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    Example e;
    HELIX_ASSIGN_OR_RETURN(e.features, SparseVector::Deserialize(r));
    HELIX_ASSIGN_OR_RETURN(e.label, r->GetDouble());
    HELIX_ASSIGN_OR_RETURN(e.id, r->GetI64());
    HELIX_ASSIGN_OR_RETURN(e.is_test, r->GetBool());
    data->Add(std::move(e));
  }
  return data;
}

}  // namespace dataflow
}  // namespace helix
