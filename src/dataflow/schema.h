// Column schemas for tabular data collections.
#ifndef HELIX_DATAFLOW_SCHEMA_H_
#define HELIX_DATAFLOW_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "dataflow/value.h"

namespace helix {
namespace dataflow {

/// A named, typed column.
struct Field {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered list of fields with O(1) lookup by name. Immutable after
/// construction in practice (operators derive new schemas).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Builds a schema of all-string columns (CSV ingestion default).
  static Schema AllStrings(const std::vector<std::string>& names);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or -1.
  int IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  /// Returns a new schema with one field appended; fails on duplicates.
  Result<Schema> WithField(Field f) const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }
  bool operator!=(const Schema& o) const { return !(*this == o); }

  /// Stable content hash.
  uint64_t Hash() const;

  std::string ToString() const;

  void Serialize(ByteWriter* w) const;
  static Result<Schema> Deserialize(ByteReader* r);

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_SCHEMA_H_
