// Trained-model payload: a dense weight vector plus training metadata.
#ifndef HELIX_DATAFLOW_MODEL_H_
#define HELIX_DATAFLOW_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/payload.h"

namespace helix {
namespace dataflow {

/// A linear model (logistic regression, structured perceptron, ...).
class ModelData final : public DataPayload {
 public:
  ModelData() = default;
  ModelData(std::string model_type, std::vector<double> weights, double bias)
      : model_type_(std::move(model_type)),
        weights_(std::move(weights)),
        bias_(bias) {}

  const std::string& model_type() const { return model_type_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Training metadata (final loss, epochs, hyperparameters used...).
  const std::map<std::string, double>& info() const { return info_; }
  void SetInfo(const std::string& key, double value) { info_[key] = value; }
  double InfoOr(const std::string& key, double fallback) const;

  PayloadKind kind() const override { return PayloadKind::kModel; }
  int64_t SizeBytes() const override;
  uint64_t Fingerprint() const override;
  void Serialize(ByteWriter* w) const override;
  std::string DebugString() const override;

  static Result<std::shared_ptr<ModelData>> Deserialize(ByteReader* r);

 private:
  std::string model_type_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::map<std::string, double> info_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_MODEL_H_
