// Sparse feature representation.
//
// HELIX maintains features in human-readable form during pre-processing and
// converts them automatically into an ML-compatible format (paper Section
// 2.1). FeatureDict is the bridge: it interns human-readable feature names
// ("edu=Bachelors x occ=Sales") into dense indices used by SparseVector.
#ifndef HELIX_DATAFLOW_FEATURES_H_
#define HELIX_DATAFLOW_FEATURES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace helix {
namespace dataflow {

/// Bidirectional feature-name <-> index dictionary.
class FeatureDict {
 public:
  FeatureDict() = default;

  /// Returns the index for `name`, interning it if new.
  int32_t Intern(const std::string& name);

  /// Index of `name` or -1 if never interned.
  int32_t Lookup(const std::string& name) const;

  /// Name of feature `index`; requires a valid index.
  const std::string& NameOf(int32_t index) const {
    return names_[static_cast<size_t>(index)];
  }

  int32_t size() const { return static_cast<int32_t>(names_.size()); }

  uint64_t Fingerprint() const;
  int64_t SizeBytes() const;

  void Serialize(ByteWriter* w) const;
  static Result<FeatureDict> Deserialize(ByteReader* r);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> index_;
};

/// Sorted sparse vector of (feature index, value) pairs.
class SparseVector {
 public:
  SparseVector() = default;

  /// Sets feature `index` to `value` (overwrites existing; dropping a
  /// feature is Set(i, 0) — zeros are kept explicit for determinism).
  void Set(int32_t index, double value);

  /// Adds `delta` to feature `index` (inserting if absent).
  void Add(int32_t index, double delta);

  double Get(int32_t index) const;

  /// Sorted entries.
  const std::vector<std::pair<int32_t, double>>& entries() const {
    return entries_;
  }
  int32_t num_entries() const { return static_cast<int32_t>(entries_.size()); }

  /// Largest feature index present, or -1 if empty.
  int32_t MaxIndex() const {
    return entries_.empty() ? -1 : entries_.back().first;
  }

  /// Dot product with a dense weight vector; indices beyond the vector's
  /// size contribute 0.
  double Dot(const std::vector<double>& dense) const;

  /// dense[i] += scale * this[i] for each stored entry; grows `dense` if
  /// needed.
  void AddTo(std::vector<double>* dense, double scale) const;

  double L2NormSquared() const;

  uint64_t Fingerprint() const;

  void Serialize(ByteWriter* w) const;
  static Result<SparseVector> Deserialize(ByteReader* r);

 private:
  std::vector<std::pair<int32_t, double>> entries_;
};

/// A supervised training/evaluation example.
///
/// A single ExamplesData node holds both splits (the paper's `income`
/// node); `is_test` selects evaluation rows so learner and evaluator can
/// share one upstream intermediate.
struct Example {
  SparseVector features;
  double label = 0.0;  // binary tasks use {0, 1}
  /// Stable row identity (e.g. source row index) for joining predictions
  /// back to inputs.
  int64_t id = 0;
  /// True for held-out evaluation rows.
  bool is_test = false;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_FEATURES_H_
