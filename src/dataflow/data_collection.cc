#include "dataflow/data_collection.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

namespace {
// "HLXD" little-endian.
constexpr uint32_t kMagic = 0x44584C48;
// Envelope format history:
//   v1 — tables serialized row-major as tagged cells;
//   v2 — tables serialized column-contiguous (type tag + validity +
//        packed body per column); all other payload kinds unchanged.
// Writers always emit kFormatVersion; readers accept every version in
// [kMinSupportedVersion, kFormatVersion] so stores written by older
// builds keep loading. Bump kFormatVersion only with a reader for every
// still-supported older version.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kMinSupportedVersion = 1;
}  // namespace

Result<const TableData*> DataCollection::AsTable() const {
  if (empty() || kind() != PayloadKind::kTable) {
    return Status::InvalidArgument("payload is not a table");
  }
  return static_cast<const TableData*>(payload_.get());
}

Result<const TextData*> DataCollection::AsText() const {
  if (empty() || kind() != PayloadKind::kText) {
    return Status::InvalidArgument("payload is not a text corpus");
  }
  return static_cast<const TextData*>(payload_.get());
}

Result<const ExamplesData*> DataCollection::AsExamples() const {
  if (empty() || kind() != PayloadKind::kExamples) {
    return Status::InvalidArgument("payload is not an example set");
  }
  return static_cast<const ExamplesData*>(payload_.get());
}

Result<const ModelData*> DataCollection::AsModel() const {
  if (empty() || kind() != PayloadKind::kModel) {
    return Status::InvalidArgument("payload is not a model");
  }
  return static_cast<const ModelData*>(payload_.get());
}

Result<const MetricsData*> DataCollection::AsMetrics() const {
  if (empty() || kind() != PayloadKind::kMetrics) {
    return Status::InvalidArgument("payload is not a metrics map");
  }
  return static_cast<const MetricsData*>(payload_.get());
}

std::string DataCollection::SerializeToString() const {
  ByteWriter w;
  // SizeBytes approximates the serialized footprint closely for columnar
  // payloads; reserving up front makes the whole serialization a single
  // allocation instead of O(log size) grow-and-copy cycles. The result is
  // then moved (never copied) into the caller — the materialization path
  // hands it straight to the storage backend.
  w.Reserve(static_cast<size_t>(SizeBytes()) + 64);
  w.PutU32(kMagic);
  w.PutU32(kFormatVersion);
  w.PutU8(static_cast<uint8_t>(kind()));
  payload_->Serialize(&w);
  uint64_t checksum = FnvHash64(w.data().data(), w.data().size());
  w.PutU64(checksum);
  return std::move(w).TakeData();
}

void DataCollection::SerializeToSpans(SpanWriter* s) const {
  size_t start = s->TotalBytes();
  ByteWriter* w = s->writer();
  w->PutU32(kMagic);
  w->PutU32(kFormatVersion);
  w->PutU8(static_cast<uint8_t>(kind()));
  payload_->SerializeToSpans(s);
  // Stream the checksum over the emitted spans — the same digest hashing
  // the flattened buffer would produce. Bytes the caller wrote before the
  // envelope (e.g. a reply status prefix) are skipped.
  uint64_t checksum = kFnvOffsetBasis;
  size_t skip = start;
  for (const ByteSpan& span : s->spans()) {
    if (skip >= span.len) {
      skip -= span.len;
      continue;
    }
    checksum = FnvHash64(span.data + skip, span.len - skip, checksum);
    skip = 0;
  }
  s->writer()->PutU64(checksum);
}

Result<DataCollection> DataCollection::DeserializeFromString(
    std::string_view data) {
  // Envelope: 4 (magic) + 4 (version) + 1 (kind) + body + 8 (checksum).
  if (data.size() < 4 + 4 + 1 + 8) {
    return Status::Corruption("data collection buffer too short");
  }
  std::string_view body = data.substr(0, data.size() - 8);
  ByteReader checksum_reader(data.substr(data.size() - 8));
  HELIX_ASSIGN_OR_RETURN(uint64_t stored_checksum, checksum_reader.GetU64());
  uint64_t actual_checksum = FnvHash64(body.data(), body.size());
  if (stored_checksum != actual_checksum) {
    return Status::Corruption(
        StrFormat("checksum mismatch: stored %016llx != actual %016llx",
                  static_cast<unsigned long long>(stored_checksum),
                  static_cast<unsigned long long>(actual_checksum)));
  }

  ByteReader r(body);
  HELIX_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMagic) {
    return Status::Corruption("bad magic in data collection envelope");
  }
  HELIX_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version < kMinSupportedVersion || version > kFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported format version %u", version));
  }
  HELIX_ASSIGN_OR_RETURN(uint8_t kind_tag, r.GetU8());

  switch (static_cast<PayloadKind>(kind_tag)) {
    case PayloadKind::kTable: {
      // The only payload whose body changed between v1 and v2.
      HELIX_ASSIGN_OR_RETURN(auto t, TableData::Deserialize(&r, version));
      return DataCollection::FromTable(std::move(t));
    }
    case PayloadKind::kText: {
      HELIX_ASSIGN_OR_RETURN(auto t, TextData::Deserialize(&r));
      return DataCollection::FromText(std::move(t));
    }
    case PayloadKind::kExamples: {
      HELIX_ASSIGN_OR_RETURN(auto e, ExamplesData::Deserialize(&r));
      return DataCollection::FromExamples(std::move(e));
    }
    case PayloadKind::kModel: {
      HELIX_ASSIGN_OR_RETURN(auto m, ModelData::Deserialize(&r));
      return DataCollection::FromModel(std::move(m));
    }
    case PayloadKind::kMetrics: {
      HELIX_ASSIGN_OR_RETURN(auto m, MetricsData::Deserialize(&r));
      return DataCollection::FromMetrics(std::move(m));
    }
  }
  return Status::Corruption(StrFormat("bad payload kind tag %u", kind_tag));
}

}  // namespace dataflow
}  // namespace helix
