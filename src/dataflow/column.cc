#include "dataflow/column.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

namespace {

// Per-cell hashes, kept bit-identical to Value::Hash() so columnar tables
// fingerprint exactly like the pre-columnar row store did.
inline uint64_t NullCellHash() {
  return Hasher().AddU64(static_cast<uint64_t>(ValueType::kNull)).Digest();
}
inline uint64_t IntCellHash(int64_t v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kInt))
      .AddI64(v)
      .Digest();
}
inline uint64_t DoubleCellHash(double v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kDouble))
      .AddDouble(v)
      .Digest();
}
inline uint64_t BoolCellHash(bool v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kBool))
      .AddBool(v)
      .Digest();
}
inline uint64_t StringCellHash(std::string_view v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kString))
      .Add(v)
      .Digest();
}

std::vector<uint8_t> GatherValidity(const std::vector<uint8_t>& validity,
                                    const SelectionVector& sel,
                                    int64_t* null_count_out) {
  *null_count_out = 0;
  if (validity.empty()) {
    return {};
  }
  std::vector<uint8_t> out((sel.size() + 7) / 8, 0xFF);
  for (size_t i = 0; i < sel.size(); ++i) {
    size_t src = static_cast<size_t>(sel[i]);
    if ((validity[src >> 3] & (1u << (src & 7))) == 0) {
      out[i >> 3] = static_cast<uint8_t>(out[i >> 3] & ~(1u << (i & 7)));
      ++*null_count_out;
    }
  }
  if (*null_count_out == 0) {
    return {};
  }
  // Clear padding bits past the last cell for deterministic bytes.
  if (!sel.empty() && (sel.size() & 7) != 0) {
    out.back() =
        static_cast<uint8_t>(out.back() & ((1u << (sel.size() & 7)) - 1));
  }
  return out;
}

}  // namespace

void Column::CellHashes(int64_t begin, int64_t end, uint64_t* out) const {
  for (int64_t i = begin; i < end; ++i) {
    out[i - begin] = CellHash(i);
  }
}

void Column::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(storage()));
  bool has_validity = !validity_.empty();
  w->PutU8(has_validity ? 1 : 0);
  if (has_validity) {
    w->PutRaw(validity_.data(), validity_.size());
  }
  SerializeBody(w);
}

// --- Int64Column -------------------------------------------------------------

Value Int64Column::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t Int64Column::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : IntCellHash(value(i));
}

int64_t Int64Column::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() * sizeof(int64_t) +
                                   validity_.size());
}

std::shared_ptr<const Column> Int64Column::Gather(
    const SelectionVector& sel) const {
  std::vector<int64_t> out;
  out.reserve(sel.size());
  for (int64_t i : sel) {
    out.push_back(values_[static_cast<size_t>(i)]);
  }
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<Int64Column>(std::move(out), std::move(validity),
                                       nulls);
}

void Int64Column::SerializeBody(ByteWriter* w) const {
  w->PutU64Array(reinterpret_cast<const uint64_t*>(values_.data()),
                 values_.size());
}

// --- DoubleColumn ------------------------------------------------------------

Value DoubleColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t DoubleColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : DoubleCellHash(value(i));
}

int64_t DoubleColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() * sizeof(double) +
                                   validity_.size());
}

std::shared_ptr<const Column> DoubleColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<double> out;
  out.reserve(sel.size());
  for (int64_t i : sel) {
    out.push_back(values_[static_cast<size_t>(i)]);
  }
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<DoubleColumn>(std::move(out), std::move(validity),
                                        nulls);
}

void DoubleColumn::SerializeBody(ByteWriter* w) const {
  static_assert(sizeof(double) == sizeof(uint64_t), "IEEE-754 doubles");
  w->PutU64Array(reinterpret_cast<const uint64_t*>(values_.data()),
                 values_.size());
}

// --- BoolColumn --------------------------------------------------------------

Value BoolColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t BoolColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : BoolCellHash(value(i));
}

int64_t BoolColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() + validity_.size());
}

std::shared_ptr<const Column> BoolColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<uint8_t> out;
  out.reserve(sel.size());
  for (int64_t i : sel) {
    out.push_back(values_[static_cast<size_t>(i)]);
  }
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<BoolColumn>(std::move(out), std::move(validity),
                                      nulls);
}

void BoolColumn::SerializeBody(ByteWriter* w) const {
  w->PutRaw(values_.data(), values_.size());
}

// --- StringColumn ------------------------------------------------------------

Value StringColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(std::string(view(i)));
}

uint64_t StringColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : StringCellHash(view(i));
}

int64_t StringColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(arena_.size() +
                                   offsets_.size() * sizeof(uint64_t) +
                                   validity_.size());
}

std::shared_ptr<const Column> StringColumn::Gather(
    const SelectionVector& sel) const {
  std::string arena;
  std::vector<uint64_t> offsets;
  offsets.reserve(sel.size() + 1);
  offsets.push_back(0);
  for (int64_t i : sel) {
    arena.append(view(i));
    offsets.push_back(arena.size());
  }
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<StringColumn>(std::move(arena), std::move(offsets),
                                        std::move(validity), nulls);
}

void StringColumn::SerializeBody(ByteWriter* w) const {
  w->PutU64(arena_.size());
  w->PutRaw(arena_.data(), arena_.size());
  w->PutU64Array(offsets_.data(), offsets_.size());
}

// --- MixedColumn -------------------------------------------------------------

MixedColumn::MixedColumn(std::vector<Value> values)
    : Column(static_cast<int64_t>(values.size()), {}, 0),
      values_(std::move(values)) {
  for (const Value& v : values_) {
    if (v.is_null()) {
      ++null_count_;
    }
  }
}

Value MixedColumn::GetValue(int64_t i) const { return value(i); }

uint64_t MixedColumn::CellHash(int64_t i) const { return value(i).Hash(); }

int64_t MixedColumn::SizeBytes() const {
  int64_t bytes = 32;
  for (const Value& v : values_) {
    bytes += 16;
    if (v.type() == ValueType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

std::shared_ptr<const Column> MixedColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<Value> out;
  out.reserve(sel.size());
  for (int64_t i : sel) {
    out.push_back(values_[static_cast<size_t>(i)]);
  }
  return std::make_shared<MixedColumn>(std::move(out));
}

void MixedColumn::SerializeBody(ByteWriter* w) const {
  for (const Value& v : values_) {
    v.Serialize(w);
  }
}

// --- Deserialization ---------------------------------------------------------

Result<std::shared_ptr<const Column>> Column::Deserialize(ByteReader* r,
                                                          int64_t num_rows) {
  HELIX_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  HELIX_ASSIGN_OR_RETURN(uint8_t has_validity, r->GetU8());
  if (has_validity > 1) {
    return Status::Corruption("bad column validity flag");
  }
  size_t n = static_cast<size_t>(num_rows);
  std::vector<uint8_t> validity;
  int64_t null_count = 0;
  if (has_validity == 1) {
    HELIX_ASSIGN_OR_RETURN(std::string_view bits, r->GetRawView((n + 7) / 8));
    validity.assign(bits.begin(), bits.end());
    for (size_t i = 0; i < n; ++i) {
      if ((validity[i >> 3] & (1u << (i & 7))) == 0) {
        ++null_count;
      }
    }
  }
  switch (static_cast<Storage>(tag)) {
    case Storage::kInt64: {
      std::vector<int64_t> values(n);
      HELIX_RETURN_IF_ERROR(
          r->GetU64Array(reinterpret_cast<uint64_t*>(values.data()), n));
      return std::shared_ptr<const Column>(std::make_shared<Int64Column>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kDouble: {
      std::vector<double> values(n);
      HELIX_RETURN_IF_ERROR(
          r->GetU64Array(reinterpret_cast<uint64_t*>(values.data()), n));
      return std::shared_ptr<const Column>(std::make_shared<DoubleColumn>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kBool: {
      HELIX_ASSIGN_OR_RETURN(std::string_view bytes, r->GetRawView(n));
      std::vector<uint8_t> values(bytes.begin(), bytes.end());
      for (uint8_t b : values) {
        if (b > 1) {
          return Status::Corruption("bool cell byte out of range");
        }
      }
      return std::shared_ptr<const Column>(std::make_shared<BoolColumn>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kString: {
      HELIX_ASSIGN_OR_RETURN(uint64_t arena_size, r->GetU64());
      if (arena_size > r->remaining()) {
        return Status::Corruption("string arena exceeds buffer");
      }
      HELIX_ASSIGN_OR_RETURN(std::string_view arena_view,
                             r->GetRawView(static_cast<size_t>(arena_size)));
      std::string arena(arena_view);
      std::vector<uint64_t> offsets(n + 1);
      HELIX_RETURN_IF_ERROR(r->GetU64Array(offsets.data(), n + 1));
      if (offsets[0] != 0 || offsets[n] != arena_size) {
        return Status::Corruption("string offsets disagree with arena");
      }
      for (size_t i = 0; i < n; ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return Status::Corruption("string offsets not ascending");
        }
      }
      return std::shared_ptr<const Column>(std::make_shared<StringColumn>(
          std::move(arena), std::move(offsets), std::move(validity),
          null_count));
    }
    case Storage::kMixed: {
      std::vector<Value> values;
      values.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        HELIX_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
        values.push_back(std::move(v));
      }
      return std::shared_ptr<const Column>(
          std::make_shared<MixedColumn>(std::move(values)));
    }
  }
  return Status::Corruption(StrFormat("bad column storage tag %u", tag));
}

// --- ColumnBuilder -----------------------------------------------------------

namespace {

Column::Storage StorageForDeclared(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Column::Storage::kInt64;
    case ValueType::kDouble:
      return Column::Storage::kDouble;
    case ValueType::kBool:
      return Column::Storage::kBool;
    case ValueType::kString:
      return Column::Storage::kString;
    case ValueType::kNull:
      break;
  }
  return Column::Storage::kMixed;
}

}  // namespace

ColumnBuilder::ColumnBuilder(ValueType declared_type)
    : declared_type_(declared_type),
      storage_(StorageForDeclared(declared_type)) {
  if (storage_ == Column::Storage::kString) {
    offsets_.push_back(0);
  }
}

void ColumnBuilder::Reserve(int64_t n) {
  size_t sn = static_cast<size_t>(n);
  switch (storage_) {
    case Column::Storage::kInt64:
      ints_.reserve(sn);
      break;
    case Column::Storage::kDouble:
      doubles_.reserve(sn);
      break;
    case Column::Storage::kBool:
      bools_.reserve(sn);
      break;
    case Column::Storage::kString:
      offsets_.reserve(sn + 1);
      break;
    case Column::Storage::kMixed:
      values_.reserve(sn);
      break;
  }
}

void ColumnBuilder::MarkValid() {
  if (!validity_.empty()) {
    size_t i = static_cast<size_t>(length_);
    if ((i >> 3) >= validity_.size()) {
      validity_.push_back(0);
    }
    validity_[i >> 3] = static_cast<uint8_t>(validity_[i >> 3] |
                                             (1u << (i & 7)));
  }
  ++length_;
}

void ColumnBuilder::MarkNull() {
  if (validity_.empty()) {
    // First null: backfill "valid" bits for every cell appended so far.
    size_t cells = static_cast<size_t>(length_);
    validity_.assign((cells + 8) / 8 + 1, 0);
    for (size_t i = 0; i < cells; ++i) {
      validity_[i >> 3] = static_cast<uint8_t>(validity_[i >> 3] |
                                               (1u << (i & 7)));
    }
  }
  size_t i = static_cast<size_t>(length_);
  if ((i >> 3) >= validity_.size()) {
    validity_.push_back(0);
  }
  // Bit already zero == null.
  ++null_count_;
  ++length_;
}

void ColumnBuilder::PromoteToMixed() {
  std::vector<Value> promoted;
  promoted.reserve(static_cast<size_t>(length_));
  for (int64_t i = 0; i < length_; ++i) {
    promoted.push_back(ValueAt(i));
  }
  values_ = std::move(promoted);
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  arena_.clear();
  offsets_.clear();
  validity_.clear();
  storage_ = Column::Storage::kMixed;
}

void ColumnBuilder::Append(const Value& v) {
  if (mixed()) {
    values_.push_back(v);
    if (v.is_null()) {
      ++null_count_;
    }
    ++length_;
    return;
  }
  switch (v.type()) {
    case ValueType::kNull:
      AppendNull();
      return;
    case ValueType::kInt:
      if (storage_ == Column::Storage::kInt64) {
        ints_.push_back(v.AsInt());
        MarkValid();
        return;
      }
      break;
    case ValueType::kDouble:
      if (storage_ == Column::Storage::kDouble) {
        doubles_.push_back(v.AsDouble());
        MarkValid();
        return;
      }
      break;
    case ValueType::kBool:
      if (storage_ == Column::Storage::kBool) {
        bools_.push_back(v.AsBool() ? 1 : 0);
        MarkValid();
        return;
      }
      break;
    case ValueType::kString:
      if (storage_ == Column::Storage::kString) {
        arena_.append(v.AsString());
        offsets_.push_back(arena_.size());
        MarkValid();
        return;
      }
      break;
  }
  // Cell type disagrees with the typed layout: keep legacy row-store
  // permissiveness by degrading this column to tagged Values.
  PromoteToMixed();
  Append(v);
}

void ColumnBuilder::AppendNull() {
  if (mixed()) {
    values_.push_back(Value::Null());
    ++null_count_;
    ++length_;
    return;
  }
  switch (storage_) {
    case Column::Storage::kInt64:
      ints_.push_back(0);
      break;
    case Column::Storage::kDouble:
      doubles_.push_back(0);
      break;
    case Column::Storage::kBool:
      bools_.push_back(0);
      break;
    case Column::Storage::kString:
      offsets_.push_back(arena_.size());
      break;
    case Column::Storage::kMixed:
      break;
  }
  MarkNull();
}

void ColumnBuilder::AppendInt(int64_t v) {
  if (storage_ == Column::Storage::kInt64) {
    ints_.push_back(v);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendDouble(double v) {
  if (storage_ == Column::Storage::kDouble) {
    doubles_.push_back(v);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendBool(bool v) {
  if (storage_ == Column::Storage::kBool) {
    bools_.push_back(v ? 1 : 0);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendString(std::string_view v) {
  if (storage_ == Column::Storage::kString) {
    arena_.append(v);
    offsets_.push_back(arena_.size());
    MarkValid();
    return;
  }
  Append(Value(std::string(v)));
}

Value ColumnBuilder::ValueAt(int64_t i) const {
  size_t si = static_cast<size_t>(i);
  if (mixed()) {
    return values_[si];
  }
  if (!validity_.empty() &&
      (validity_[si >> 3] & (1u << (si & 7))) == 0) {
    return Value::Null();
  }
  switch (storage_) {
    case Column::Storage::kInt64:
      return Value(ints_[si]);
    case Column::Storage::kDouble:
      return Value(doubles_[si]);
    case Column::Storage::kBool:
      return Value(bools_[si] != 0);
    case Column::Storage::kString:
      return Value(arena_.substr(static_cast<size_t>(offsets_[si]),
                                 static_cast<size_t>(offsets_[si + 1]) -
                                     static_cast<size_t>(offsets_[si])));
    case Column::Storage::kMixed:
      break;
  }
  return Value::Null();
}

std::shared_ptr<const Column> ColumnBuilder::Finish() {
  // Trim the lazily-grown validity bitmap to exactly (length+7)/8 bytes
  // with padding bits cleared, so sealed bytes are deterministic. Mixed
  // columns carry nulls in their cells, not in a bitmap.
  std::vector<uint8_t> validity;
  if (null_count_ > 0 && !mixed()) {
    size_t want = (static_cast<size_t>(length_) + 7) / 8;
    validity.assign(validity_.begin(),
                    validity_.begin() + static_cast<long>(want));
    if ((length_ & 7) != 0) {
      validity.back() = static_cast<uint8_t>(
          validity.back() & ((1u << (length_ & 7)) - 1));
    }
  }
  std::shared_ptr<const Column> out;
  switch (storage_) {
    case Column::Storage::kInt64:
      out = std::make_shared<Int64Column>(std::move(ints_),
                                          std::move(validity), null_count_);
      break;
    case Column::Storage::kDouble:
      out = std::make_shared<DoubleColumn>(std::move(doubles_),
                                           std::move(validity), null_count_);
      break;
    case Column::Storage::kBool:
      out = std::make_shared<BoolColumn>(std::move(bools_),
                                         std::move(validity), null_count_);
      break;
    case Column::Storage::kString:
      out = std::make_shared<StringColumn>(std::move(arena_),
                                           std::move(offsets_),
                                           std::move(validity), null_count_);
      break;
    case Column::Storage::kMixed:
      out = std::make_shared<MixedColumn>(std::move(values_));
      break;
  }
  *this = ColumnBuilder(declared_type_);
  return out;
}

std::unique_ptr<ColumnBuilder> ColumnBuilder::FromColumn(
    const Column& column) {
  ValueType declared = ValueType::kString;
  switch (column.storage()) {
    case Column::Storage::kInt64:
      declared = ValueType::kInt;
      break;
    case Column::Storage::kDouble:
      declared = ValueType::kDouble;
      break;
    case Column::Storage::kBool:
      declared = ValueType::kBool;
      break;
    case Column::Storage::kString:
      declared = ValueType::kString;
      break;
    case Column::Storage::kMixed:
      declared = ValueType::kNull;  // maps to the mixed layout
      break;
  }
  auto builder = std::make_unique<ColumnBuilder>(declared);
  builder->Reserve(column.length());
  for (int64_t i = 0; i < column.length(); ++i) {
    if (column.IsNull(i)) {
      builder->AppendNull();
    } else {
      builder->Append(column.GetValue(i));
    }
  }
  return builder;
}

}  // namespace dataflow
}  // namespace helix
