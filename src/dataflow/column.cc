#include "dataflow/column.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"
#include "dataflow/simd.h"

namespace helix {
namespace dataflow {

namespace {

// Per-cell hashes, kept bit-identical to Value::Hash() so columnar tables
// fingerprint exactly like the pre-columnar row store did.
inline uint64_t NullCellHash() {
  return Hasher().AddU64(static_cast<uint64_t>(ValueType::kNull)).Digest();
}
inline uint64_t IntCellHash(int64_t v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kInt))
      .AddI64(v)
      .Digest();
}
inline uint64_t DoubleCellHash(double v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kDouble))
      .AddDouble(v)
      .Digest();
}
inline uint64_t BoolCellHash(bool v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kBool))
      .AddBool(v)
      .Digest();
}
inline uint64_t StringCellHash(std::string_view v) {
  return Hasher()
      .AddU64(static_cast<uint64_t>(ValueType::kString))
      .Add(v)
      .Digest();
}

std::vector<uint8_t> GatherValidity(const std::vector<uint8_t>& validity,
                                    const SelectionVector& sel,
                                    int64_t* null_count_out) {
  *null_count_out = 0;
  if (validity.empty()) {
    return {};
  }
  std::vector<uint8_t> out((sel.size() + 7) / 8, 0xFF);
  for (size_t i = 0; i < sel.size(); ++i) {
    size_t src = static_cast<size_t>(sel[i]);
    if ((validity[src >> 3] & (1u << (src & 7))) == 0) {
      out[i >> 3] = static_cast<uint8_t>(out[i >> 3] & ~(1u << (i & 7)));
      ++*null_count_out;
    }
  }
  if (*null_count_out == 0) {
    return {};
  }
  // Clear padding bits past the last cell for deterministic bytes.
  if (!sel.empty() && (sel.size() & 7) != 0) {
    out.back() =
        static_cast<uint8_t>(out.back() & ((1u << (sel.size() & 7)) - 1));
  }
  return out;
}

}  // namespace

void Column::CellHashes(int64_t begin, int64_t end, uint64_t* out) const {
  for (int64_t i = begin; i < end; ++i) {
    out[i - begin] = CellHash(i);
  }
}

void Column::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(storage()));
  bool has_validity = !validity_.empty();
  w->PutU8(has_validity ? 1 : 0);
  if (has_validity) {
    w->PutRaw(validity_.data(), validity_.size());
  }
  SerializeBody(w);
}

void Column::SerializeToSpans(SpanWriter* s) const {
  ByteWriter* w = s->writer();
  w->PutU8(static_cast<uint8_t>(storage()));
  bool has_validity = !validity_.empty();
  w->PutU8(has_validity ? 1 : 0);
  if (has_validity) {
    s->Borrow(validity_.data(), validity_.size());
  }
  SerializeBodyToSpans(s);
}

// --- Int64Column -------------------------------------------------------------

Value Int64Column::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t Int64Column::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : IntCellHash(value(i));
}

int64_t Int64Column::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() * sizeof(int64_t) +
                                   validity_.size());
}

std::shared_ptr<const Column> Int64Column::Gather(
    const SelectionVector& sel) const {
  std::vector<int64_t> out(sel.size());
  simd::GatherI64(values_.data(), sel.data(),
                  static_cast<int64_t>(sel.size()), out.data());
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<Int64Column>(std::move(out), std::move(validity),
                                       nulls);
}

void Int64Column::SerializeBody(ByteWriter* w) const {
  w->PutU64Array(reinterpret_cast<const uint64_t*>(values_.data()),
                 values_.size());
}

void Int64Column::SerializeBodyToSpans(SpanWriter* s) const {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  s->Borrow(values_.data(), values_.size() * sizeof(int64_t));
#else
  SerializeBody(s->writer());  // big-endian hosts byte-swap per element
#endif
}

// --- DoubleColumn ------------------------------------------------------------

Value DoubleColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t DoubleColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : DoubleCellHash(value(i));
}

int64_t DoubleColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() * sizeof(double) +
                                   validity_.size());
}

std::shared_ptr<const Column> DoubleColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<double> out(sel.size());
  simd::GatherF64(values_.data(), sel.data(),
                  static_cast<int64_t>(sel.size()), out.data());
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<DoubleColumn>(std::move(out), std::move(validity),
                                        nulls);
}

void DoubleColumn::SerializeBody(ByteWriter* w) const {
  static_assert(sizeof(double) == sizeof(uint64_t), "IEEE-754 doubles");
  w->PutU64Array(reinterpret_cast<const uint64_t*>(values_.data()),
                 values_.size());
}

void DoubleColumn::SerializeBodyToSpans(SpanWriter* s) const {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  s->Borrow(values_.data(), values_.size() * sizeof(double));
#else
  SerializeBody(s->writer());
#endif
}

// --- BoolColumn --------------------------------------------------------------

Value BoolColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(value(i));
}

uint64_t BoolColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : BoolCellHash(value(i));
}

int64_t BoolColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(values_.size() + validity_.size());
}

std::shared_ptr<const Column> BoolColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<uint8_t> out(sel.size());
  simd::GatherU8(values_.data(), sel.data(),
                 static_cast<int64_t>(sel.size()), out.data());
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<BoolColumn>(std::move(out), std::move(validity),
                                      nulls);
}

void BoolColumn::SerializeBody(ByteWriter* w) const {
  w->PutRaw(values_.data(), values_.size());
}

void BoolColumn::SerializeBodyToSpans(SpanWriter* s) const {
  s->Borrow(values_.data(), values_.size());
}

// --- StringColumn ------------------------------------------------------------

Value StringColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(std::string(view(i)));
}

uint64_t StringColumn::CellHash(int64_t i) const {
  return IsNull(i) ? NullCellHash() : StringCellHash(view(i));
}

int64_t StringColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(arena_.size() +
                                   offsets_.size() * sizeof(uint64_t) +
                                   validity_.size());
}

std::shared_ptr<const Column> StringColumn::Gather(
    const SelectionVector& sel) const {
  std::string arena;
  std::vector<uint64_t> offsets;
  offsets.reserve(sel.size() + 1);
  offsets.push_back(0);
  for (int64_t i : sel) {
    arena.append(view(i));
    offsets.push_back(arena.size());
  }
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  return std::make_shared<StringColumn>(std::move(arena), std::move(offsets),
                                        std::move(validity), nulls);
}

void StringColumn::SerializeBody(ByteWriter* w) const {
  w->PutU64(arena_.size());
  w->PutRaw(arena_.data(), arena_.size());
  w->PutU64Array(offsets_.data(), offsets_.size());
}

void StringColumn::SerializeBodyToSpans(SpanWriter* s) const {
  s->writer()->PutU64(arena_.size());
  s->Borrow(arena_.data(), arena_.size());
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  s->Borrow(offsets_.data(), offsets_.size() * sizeof(uint64_t));
#else
  s->writer()->PutU64Array(offsets_.data(), offsets_.size());
#endif
}

// --- DictionaryColumn --------------------------------------------------------

Value DictionaryColumn::GetValue(int64_t i) const {
  return IsNull(i) ? Value::Null() : Value(std::string(view(i)));
}

uint64_t DictionaryColumn::CellHash(int64_t i) const {
  // The dictionary caches each entry's string cell hash, so a repeated
  // categorical fingerprints with one array lookup per row.
  return IsNull(i) ? NullCellHash()
                   : dict_->hashes[codes_[static_cast<size_t>(i)]];
}

void DictionaryColumn::CellHashes(int64_t begin, int64_t end,
                                  uint64_t* out) const {
  const uint64_t* hashes = dict_->hashes.data();
  if (validity_.empty()) {
    for (int64_t i = begin; i < end; ++i) {
      out[i - begin] = hashes[codes_[static_cast<size_t>(i)]];
    }
    return;
  }
  const uint64_t null_hash = NullCellHash();
  for (int64_t i = begin; i < end; ++i) {
    out[i - begin] = IsNull(i)
                         ? null_hash
                         : hashes[codes_[static_cast<size_t>(i)]];
  }
}

int64_t DictionaryColumn::SizeBytes() const {
  return 32 + static_cast<int64_t>(
                  codes_.size() * sizeof(uint32_t) + dict_->arena.size() +
                  dict_->offsets.size() * sizeof(uint64_t) +
                  dict_->hashes.size() * sizeof(uint64_t) + validity_.size());
}

std::shared_ptr<const Column> DictionaryColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<uint32_t> out(sel.size());
  simd::GatherU32(codes_.data(), sel.data(),
                  static_cast<int64_t>(sel.size()), out.data());
  int64_t nulls = 0;
  std::vector<uint8_t> validity = GatherValidity(validity_, sel, &nulls);
  // The dictionary is shared, not trimmed: a filter's output keeps every
  // entry (possibly some now-unreferenced) so the gather never touches
  // string bytes.
  return std::make_shared<DictionaryColumn>(dict_, std::move(out),
                                            std::move(validity), nulls);
}

void DictionaryColumn::SerializeBody(ByteWriter* w) const {
  w->PutU64(static_cast<uint64_t>(dict_->num_entries()));
  w->PutU64(dict_->arena.size());
  w->PutRaw(dict_->arena.data(), dict_->arena.size());
  w->PutU64Array(dict_->offsets.data(), dict_->offsets.size());
  w->PutU32Array(codes_.data(), codes_.size());
}

void DictionaryColumn::SerializeBodyToSpans(SpanWriter* s) const {
  s->writer()->PutU64(static_cast<uint64_t>(dict_->num_entries()));
  s->writer()->PutU64(dict_->arena.size());
  s->Borrow(dict_->arena.data(), dict_->arena.size());
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  s->Borrow(dict_->offsets.data(), dict_->offsets.size() * sizeof(uint64_t));
  s->Borrow(codes_.data(), codes_.size() * sizeof(uint32_t));
#else
  s->writer()->PutU64Array(dict_->offsets.data(), dict_->offsets.size());
  s->writer()->PutU32Array(codes_.data(), codes_.size());
#endif
}

// --- MixedColumn -------------------------------------------------------------

MixedColumn::MixedColumn(std::vector<Value> values)
    : Column(static_cast<int64_t>(values.size()), {}, 0),
      values_(std::move(values)) {
  for (const Value& v : values_) {
    if (v.is_null()) {
      ++null_count_;
    }
  }
}

Value MixedColumn::GetValue(int64_t i) const { return value(i); }

uint64_t MixedColumn::CellHash(int64_t i) const { return value(i).Hash(); }

int64_t MixedColumn::SizeBytes() const {
  int64_t bytes = 32;
  for (const Value& v : values_) {
    bytes += 16;
    if (v.type() == ValueType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

std::shared_ptr<const Column> MixedColumn::Gather(
    const SelectionVector& sel) const {
  std::vector<Value> out;
  out.reserve(sel.size());
  for (int64_t i : sel) {
    out.push_back(values_[static_cast<size_t>(i)]);
  }
  return std::make_shared<MixedColumn>(std::move(out));
}

void MixedColumn::SerializeBody(ByteWriter* w) const {
  for (const Value& v : values_) {
    v.Serialize(w);
  }
}

// --- Deserialization ---------------------------------------------------------

Result<std::shared_ptr<const Column>> Column::Deserialize(ByteReader* r,
                                                          int64_t num_rows) {
  HELIX_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  HELIX_ASSIGN_OR_RETURN(uint8_t has_validity, r->GetU8());
  if (has_validity > 1) {
    return Status::Corruption("bad column validity flag");
  }
  size_t n = static_cast<size_t>(num_rows);
  std::vector<uint8_t> validity;
  int64_t null_count = 0;
  if (has_validity == 1) {
    HELIX_ASSIGN_OR_RETURN(std::string_view bits, r->GetRawView((n + 7) / 8));
    validity.assign(bits.begin(), bits.end());
    null_count = simd::PopcountZeros(validity.data(),
                                     static_cast<int64_t>(n));
  }
  switch (static_cast<Storage>(tag)) {
    case Storage::kInt64: {
      std::vector<int64_t> values(n);
      HELIX_RETURN_IF_ERROR(
          r->GetU64Array(reinterpret_cast<uint64_t*>(values.data()), n));
      return std::shared_ptr<const Column>(std::make_shared<Int64Column>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kDouble: {
      std::vector<double> values(n);
      HELIX_RETURN_IF_ERROR(
          r->GetU64Array(reinterpret_cast<uint64_t*>(values.data()), n));
      return std::shared_ptr<const Column>(std::make_shared<DoubleColumn>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kBool: {
      HELIX_ASSIGN_OR_RETURN(std::string_view bytes, r->GetRawView(n));
      std::vector<uint8_t> values(bytes.begin(), bytes.end());
      for (uint8_t b : values) {
        if (b > 1) {
          return Status::Corruption("bool cell byte out of range");
        }
      }
      return std::shared_ptr<const Column>(std::make_shared<BoolColumn>(
          std::move(values), std::move(validity), null_count));
    }
    case Storage::kString: {
      HELIX_ASSIGN_OR_RETURN(uint64_t arena_size, r->GetU64());
      if (arena_size > r->remaining()) {
        return Status::Corruption("string arena exceeds buffer");
      }
      HELIX_ASSIGN_OR_RETURN(std::string_view arena_view,
                             r->GetRawView(static_cast<size_t>(arena_size)));
      std::string arena(arena_view);
      std::vector<uint64_t> offsets(n + 1);
      HELIX_RETURN_IF_ERROR(r->GetU64Array(offsets.data(), n + 1));
      if (offsets[0] != 0 || offsets[n] != arena_size) {
        return Status::Corruption("string offsets disagree with arena");
      }
      for (size_t i = 0; i < n; ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return Status::Corruption("string offsets not ascending");
        }
      }
      return std::shared_ptr<const Column>(std::make_shared<StringColumn>(
          std::move(arena), std::move(offsets), std::move(validity),
          null_count));
    }
    case Storage::kMixed: {
      std::vector<Value> values;
      values.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        HELIX_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
        values.push_back(std::move(v));
      }
      return std::shared_ptr<const Column>(
          std::make_shared<MixedColumn>(std::move(values)));
    }
    case Storage::kDictString: {
      HELIX_ASSIGN_OR_RETURN(uint64_t num_entries, r->GetU64());
      // D+1 offsets must fit in what's left before anything is allocated.
      if (num_entries >= r->remaining() / sizeof(uint64_t)) {
        return Status::Corruption("dictionary entry count exceeds buffer");
      }
      if (n > 0 && num_entries == 0) {
        return Status::Corruption("dictionary column with empty dictionary");
      }
      size_t d = static_cast<size_t>(num_entries);
      HELIX_ASSIGN_OR_RETURN(uint64_t arena_size, r->GetU64());
      if (arena_size > r->remaining()) {
        return Status::Corruption("dictionary arena exceeds buffer");
      }
      auto dict = std::make_shared<StringDict>();
      HELIX_ASSIGN_OR_RETURN(std::string_view arena_view,
                             r->GetRawView(static_cast<size_t>(arena_size)));
      dict->arena.assign(arena_view);
      dict->offsets.resize(d + 1);
      HELIX_RETURN_IF_ERROR(r->GetU64Array(dict->offsets.data(), d + 1));
      if (dict->offsets[0] != 0 || dict->offsets[d] != arena_size) {
        return Status::Corruption("dictionary offsets disagree with arena");
      }
      for (size_t i = 0; i < d; ++i) {
        if (dict->offsets[i] > dict->offsets[i + 1]) {
          return Status::Corruption("dictionary offsets not ascending");
        }
      }
      std::vector<uint32_t> codes(n);
      HELIX_RETURN_IF_ERROR(r->GetU32Array(codes.data(), n));
      for (uint32_t c : codes) {
        if (c >= num_entries) {
          return Status::Corruption("dictionary code out of range");
        }
      }
      dict->hashes.reserve(d);
      for (size_t i = 0; i < d; ++i) {
        dict->hashes.push_back(
            StringCellHash(dict->entry(static_cast<uint32_t>(i))));
      }
      return std::shared_ptr<const Column>(
          std::make_shared<DictionaryColumn>(std::move(dict),
                                             std::move(codes),
                                             std::move(validity),
                                             null_count));
    }
  }
  return Status::Corruption(StrFormat("bad column storage tag %u", tag));
}

// --- ColumnBuilder -----------------------------------------------------------

namespace {

Column::Storage StorageForDeclared(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return Column::Storage::kInt64;
    case ValueType::kDouble:
      return Column::Storage::kDouble;
    case ValueType::kBool:
      return Column::Storage::kBool;
    case ValueType::kString:
      return Column::Storage::kString;
    case ValueType::kNull:
      break;
  }
  return Column::Storage::kMixed;
}

}  // namespace

ColumnBuilder::ColumnBuilder(ValueType declared_type)
    : declared_type_(declared_type),
      storage_(StorageForDeclared(declared_type)) {
  if (storage_ == Column::Storage::kString) {
    offsets_.push_back(0);
    // String builders start in dictionary mode: arena_/offsets_ hold the
    // distinct entries, codes_ the per-row codes. Whether Finish() emits
    // a DictionaryColumn or a plain StringColumn is a deterministic
    // function of the appended cell sequence (see Finish), so row-built
    // and column-built tables still serialize byte-identically.
    dict_mode_ = true;
  }
}

void ColumnBuilder::Reserve(int64_t n) {
  size_t sn = static_cast<size_t>(n);
  switch (storage_) {
    case Column::Storage::kInt64:
      ints_.reserve(sn);
      break;
    case Column::Storage::kDouble:
      doubles_.reserve(sn);
      break;
    case Column::Storage::kBool:
      bools_.reserve(sn);
      break;
    case Column::Storage::kString:
      if (dict_mode_) {
        codes_.reserve(sn);
      } else {
        offsets_.reserve(sn + 1);
      }
      break;
    case Column::Storage::kMixed:
      values_.reserve(sn);
      break;
    case Column::Storage::kDictString:
      break;  // builders never sit on this storage; Finish() selects it
  }
}

void ColumnBuilder::MarkValid() {
  if (!validity_.empty()) {
    size_t i = static_cast<size_t>(length_);
    if ((i >> 3) >= validity_.size()) {
      validity_.push_back(0);
    }
    validity_[i >> 3] = static_cast<uint8_t>(validity_[i >> 3] |
                                             (1u << (i & 7)));
  }
  ++length_;
}

void ColumnBuilder::MarkNull() {
  if (validity_.empty()) {
    // First null: backfill "valid" bits for every cell appended so far.
    size_t cells = static_cast<size_t>(length_);
    validity_.assign((cells + 8) / 8 + 1, 0);
    for (size_t i = 0; i < cells; ++i) {
      validity_[i >> 3] = static_cast<uint8_t>(validity_[i >> 3] |
                                               (1u << (i & 7)));
    }
  }
  size_t i = static_cast<size_t>(length_);
  if ((i >> 3) >= validity_.size()) {
    validity_.push_back(0);
  }
  // Bit already zero == null.
  ++null_count_;
  ++length_;
}

void ColumnBuilder::PromoteToMixed() {
  std::vector<Value> promoted;
  promoted.reserve(static_cast<size_t>(length_));
  for (int64_t i = 0; i < length_; ++i) {
    promoted.push_back(ValueAt(i));
  }
  values_ = std::move(promoted);
  ints_.clear();
  doubles_.clear();
  bools_.clear();
  arena_.clear();
  offsets_.clear();
  validity_.clear();
  codes_.clear();
  slots_.clear();
  dict_mode_ = false;
  storage_ = Column::Storage::kMixed;
}

// --- dictionary-mode string interning ---------------------------------------

bool ColumnBuilder::TryInternDictEntry(std::string_view v, uint32_t* code) {
  // Open addressing with linear probing over slots_ (entry code + 1;
  // 0 == empty), comparing against the entry bytes in arena_. Rebuilding
  // on growth rehashes codes only — entry bytes never move.
  if (slots_.empty()) {
    slots_.assign(64, 0);
  }
  size_t mask = slots_.size() - 1;
  uint64_t h = FnvHash64(v);
  size_t idx = static_cast<size_t>(h) & mask;
  while (slots_[idx] != 0) {
    uint32_t existing = slots_[idx] - 1;
    size_t b = static_cast<size_t>(offsets_[existing]);
    size_t e = static_cast<size_t>(offsets_[existing + 1]);
    if (std::string_view(arena_).substr(b, e - b) == v) {
      *code = existing;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  int64_t num_entries = static_cast<int64_t>(offsets_.size()) - 1;
  if (num_entries >= kMaxDictDistinct) {
    // Too many distinct values to pay for a dictionary — expand what we
    // have into a plain arena and stay plain for the rest of the build.
    AbandonDict();
    return false;
  }
  uint32_t fresh = static_cast<uint32_t>(num_entries);
  arena_.append(v);
  offsets_.push_back(arena_.size());
  slots_[idx] = fresh + 1;
  if (static_cast<size_t>(num_entries + 1) * 2 > slots_.size()) {
    std::vector<uint32_t> grown(slots_.size() * 2, 0);
    size_t grown_mask = grown.size() - 1;
    for (uint32_t slot : slots_) {
      if (slot == 0) {
        continue;
      }
      uint32_t c = slot - 1;
      size_t b = static_cast<size_t>(offsets_[c]);
      size_t e = static_cast<size_t>(offsets_[c + 1]);
      size_t j = static_cast<size_t>(FnvHash64(
                     std::string_view(arena_).substr(b, e - b))) &
                 grown_mask;
      while (grown[j] != 0) {
        j = (j + 1) & grown_mask;
      }
      grown[j] = slot;
    }
    slots_ = std::move(grown);
  }
  *code = fresh;
  return true;
}

void ColumnBuilder::AbandonDict() {
  std::string plain;
  std::vector<uint64_t> plain_offsets;
  plain_offsets.reserve(codes_.size() + 1);
  plain_offsets.push_back(0);
  size_t total = 0;
  for (uint32_t c : codes_) {
    total += static_cast<size_t>(offsets_[c + 1] - offsets_[c]);
  }
  plain.reserve(total);
  for (uint32_t c : codes_) {
    plain.append(arena_, static_cast<size_t>(offsets_[c]),
                 static_cast<size_t>(offsets_[c + 1] - offsets_[c]));
    plain_offsets.push_back(plain.size());
  }
  arena_ = std::move(plain);
  offsets_ = std::move(plain_offsets);
  codes_.clear();
  codes_.shrink_to_fit();
  slots_.clear();
  dict_mode_ = false;
}

void ColumnBuilder::AppendStringCell(std::string_view v) {
  if (dict_mode_) {
    uint32_t code = 0;
    if (TryInternDictEntry(v, &code)) {
      codes_.push_back(code);
      return;
    }
    // Fell off dictionary mode; append this cell plainly below.
  }
  arena_.append(v);
  offsets_.push_back(arena_.size());
}

void ColumnBuilder::Append(const Value& v) {
  if (mixed()) {
    values_.push_back(v);
    if (v.is_null()) {
      ++null_count_;
    }
    ++length_;
    return;
  }
  switch (v.type()) {
    case ValueType::kNull:
      AppendNull();
      return;
    case ValueType::kInt:
      if (storage_ == Column::Storage::kInt64) {
        ints_.push_back(v.AsInt());
        MarkValid();
        return;
      }
      break;
    case ValueType::kDouble:
      if (storage_ == Column::Storage::kDouble) {
        doubles_.push_back(v.AsDouble());
        MarkValid();
        return;
      }
      break;
    case ValueType::kBool:
      if (storage_ == Column::Storage::kBool) {
        bools_.push_back(v.AsBool() ? 1 : 0);
        MarkValid();
        return;
      }
      break;
    case ValueType::kString:
      if (storage_ == Column::Storage::kString) {
        AppendStringCell(v.AsString());
        MarkValid();
        return;
      }
      break;
  }
  // Cell type disagrees with the typed layout: keep legacy row-store
  // permissiveness by degrading this column to tagged Values.
  PromoteToMixed();
  Append(v);
}

void ColumnBuilder::AppendNull() {
  if (mixed()) {
    values_.push_back(Value::Null());
    ++null_count_;
    ++length_;
    return;
  }
  switch (storage_) {
    case Column::Storage::kInt64:
      ints_.push_back(0);
      break;
    case Column::Storage::kDouble:
      doubles_.push_back(0);
      break;
    case Column::Storage::kBool:
      bools_.push_back(0);
      break;
    case Column::Storage::kString:
      // Null cells carry the empty string (dict mode interns it), so
      // view(i) == "" for nulls on both storages.
      AppendStringCell(std::string_view());
      break;
    case Column::Storage::kMixed:
    case Column::Storage::kDictString:
      break;
  }
  MarkNull();
}

void ColumnBuilder::AppendInt(int64_t v) {
  if (storage_ == Column::Storage::kInt64) {
    ints_.push_back(v);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendDouble(double v) {
  if (storage_ == Column::Storage::kDouble) {
    doubles_.push_back(v);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendBool(bool v) {
  if (storage_ == Column::Storage::kBool) {
    bools_.push_back(v ? 1 : 0);
    MarkValid();
    return;
  }
  Append(Value(v));
}

void ColumnBuilder::AppendString(std::string_view v) {
  if (storage_ == Column::Storage::kString) {
    AppendStringCell(v);
    MarkValid();
    return;
  }
  Append(Value(std::string(v)));
}

Value ColumnBuilder::ValueAt(int64_t i) const {
  size_t si = static_cast<size_t>(i);
  if (mixed()) {
    return values_[si];
  }
  if (!validity_.empty() &&
      (validity_[si >> 3] & (1u << (si & 7))) == 0) {
    return Value::Null();
  }
  switch (storage_) {
    case Column::Storage::kInt64:
      return Value(ints_[si]);
    case Column::Storage::kDouble:
      return Value(doubles_[si]);
    case Column::Storage::kBool:
      return Value(bools_[si] != 0);
    case Column::Storage::kString: {
      size_t cell = dict_mode_ ? static_cast<size_t>(codes_[si]) : si;
      return Value(arena_.substr(static_cast<size_t>(offsets_[cell]),
                                 static_cast<size_t>(offsets_[cell + 1]) -
                                     static_cast<size_t>(offsets_[cell])));
    }
    case Column::Storage::kMixed:
    case Column::Storage::kDictString:
      break;
  }
  return Value::Null();
}

std::shared_ptr<const Column> ColumnBuilder::Finish() {
  // Trim the lazily-grown validity bitmap to exactly (length+7)/8 bytes
  // with padding bits cleared, so sealed bytes are deterministic. Mixed
  // columns carry nulls in their cells, not in a bitmap.
  std::vector<uint8_t> validity;
  if (null_count_ > 0 && !mixed()) {
    size_t want = (static_cast<size_t>(length_) + 7) / 8;
    validity.assign(validity_.begin(),
                    validity_.begin() + static_cast<long>(want));
    if ((length_ & 7) != 0) {
      validity.back() = static_cast<uint8_t>(
          validity.back() & ((1u << (length_ & 7)) - 1));
    }
  }
  std::shared_ptr<const Column> out;
  switch (storage_) {
    case Column::Storage::kInt64:
      out = std::make_shared<Int64Column>(std::move(ints_),
                                          std::move(validity), null_count_);
      break;
    case Column::Storage::kDouble:
      out = std::make_shared<DoubleColumn>(std::move(doubles_),
                                           std::move(validity), null_count_);
      break;
    case Column::Storage::kBool:
      out = std::make_shared<BoolColumn>(std::move(bools_),
                                         std::move(validity), null_count_);
      break;
    case Column::Storage::kString:
      if (dict_mode_) {
        int64_t distinct = static_cast<int64_t>(offsets_.size()) - 1;
        // Emit a DictionaryColumn only when the codes pay for the
        // dictionary: enough rows, and at least 4x repetition. Both the
        // row count and the distinct count are functions of the cell
        // sequence alone, so the choice is deterministic.
        if (length_ >= kMinDictRows && distinct * 4 <= length_) {
          auto dict = std::make_shared<StringDict>();
          dict->arena = std::move(arena_);
          dict->offsets = std::move(offsets_);
          dict->hashes.reserve(static_cast<size_t>(distinct));
          for (int64_t c = 0; c < distinct; ++c) {
            dict->hashes.push_back(
                StringCellHash(dict->entry(static_cast<uint32_t>(c))));
          }
          simd::RecordInvocation(simd::Kernel::kDictEncode,
                                 simd::Isa::kScalar);
          out = std::make_shared<DictionaryColumn>(
              std::move(dict), std::move(codes_), std::move(validity),
              null_count_);
          break;
        }
        AbandonDict();  // materialize the plain arena from the codes
      }
      out = std::make_shared<StringColumn>(std::move(arena_),
                                           std::move(offsets_),
                                           std::move(validity), null_count_);
      break;
    case Column::Storage::kMixed:
      out = std::make_shared<MixedColumn>(std::move(values_));
      break;
    case Column::Storage::kDictString:
      break;  // unreachable: builders never sit on this storage
  }
  *this = ColumnBuilder(declared_type_);
  return out;
}

std::unique_ptr<ColumnBuilder> ColumnBuilder::FromColumn(
    const Column& column) {
  ValueType declared = ValueType::kString;
  switch (column.storage()) {
    case Column::Storage::kInt64:
      declared = ValueType::kInt;
      break;
    case Column::Storage::kDouble:
      declared = ValueType::kDouble;
      break;
    case Column::Storage::kBool:
      declared = ValueType::kBool;
      break;
    case Column::Storage::kString:
    case Column::Storage::kDictString:
      declared = ValueType::kString;
      break;
    case Column::Storage::kMixed:
      declared = ValueType::kNull;  // maps to the mixed layout
      break;
  }
  auto builder = std::make_unique<ColumnBuilder>(declared);
  builder->Reserve(column.length());
  for (int64_t i = 0; i < column.length(); ++i) {
    if (column.IsNull(i)) {
      builder->AppendNull();
    } else {
      builder->Append(column.GetValue(i));
    }
  }
  return builder;
}

}  // namespace dataflow
}  // namespace helix
