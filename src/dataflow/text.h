// Text corpus payload for the information-extraction application:
// documents with optional character-span annotations (e.g. gold or
// predicted person mentions).
#ifndef HELIX_DATAFLOW_TEXT_H_
#define HELIX_DATAFLOW_TEXT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/payload.h"

namespace helix {
namespace dataflow {

/// A labeled half-open character span [begin, end) within a document.
struct Span {
  int32_t begin = 0;
  int32_t end = 0;
  std::string label;

  bool operator==(const Span& o) const {
    return begin == o.begin && end == o.end && label == o.label;
  }
  bool operator<(const Span& o) const {
    if (begin != o.begin) return begin < o.begin;
    if (end != o.end) return end < o.end;
    return label < o.label;
  }
};

/// A document with its annotations.
struct Document {
  std::string id;
  std::string text;
  std::vector<Span> spans;
};

/// An ordered collection of documents.
class TextData final : public DataPayload {
 public:
  TextData() = default;
  explicit TextData(std::vector<Document> docs) : docs_(std::move(docs)) {}

  int64_t num_docs() const { return static_cast<int64_t>(docs_.size()); }
  const std::vector<Document>& docs() const { return docs_; }
  const Document& doc(int64_t i) const { return docs_[static_cast<size_t>(i)]; }

  void AddDoc(Document d) { docs_.push_back(std::move(d)); }

  PayloadKind kind() const override { return PayloadKind::kText; }
  int64_t SizeBytes() const override;
  uint64_t Fingerprint() const override;
  void Serialize(ByteWriter* w) const override;
  std::string DebugString() const override;

  static Result<std::shared_ptr<TextData>> Deserialize(ByteReader* r);

 private:
  std::vector<Document> docs_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_TEXT_H_
