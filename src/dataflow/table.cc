#include "dataflow/table.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

const char* PayloadKindToString(PayloadKind k) {
  switch (k) {
    case PayloadKind::kTable:
      return "table";
    case PayloadKind::kText:
      return "text";
    case PayloadKind::kExamples:
      return "examples";
    case PayloadKind::kModel:
      return "model";
    case PayloadKind::kMetrics:
      return "metrics";
  }
  return "?";
}

Status TableData::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %d", row.size(),
                  schema_.num_fields()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::vector<Value>> TableData::Column(const std::string& name) const {
  int idx = schema_.IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("no column named " + name);
  }
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) {
    out.push_back(r[static_cast<size_t>(idx)]);
  }
  return out;
}

int64_t TableData::SizeBytes() const {
  // Approximation: per-cell tagged union + string bodies.
  int64_t bytes = 64 + schema_.num_fields() * 24;
  for (const Row& r : rows_) {
    bytes += 16;  // row header
    for (const Value& v : r) {
      bytes += 16;
      if (v.type() == ValueType::kString) {
        bytes += static_cast<int64_t>(v.AsString().size());
      }
    }
  }
  return bytes;
}

uint64_t TableData::Fingerprint() const {
  Hasher h;
  h.AddU64(schema_.Hash());
  h.AddU64(rows_.size());
  for (const Row& r : rows_) {
    for (const Value& v : r) {
      h.AddU64(v.Hash());
    }
  }
  return h.Digest();
}

void TableData::Serialize(ByteWriter* w) const {
  schema_.Serialize(w);
  w->PutU64(rows_.size());
  for (const Row& r : rows_) {
    for (const Value& v : r) {
      v.Serialize(w);
    }
  }
}

std::string TableData::DebugString() const {
  return StrFormat("table(%lld rows x %d cols)",
                   static_cast<long long>(num_rows()), schema_.num_fields());
}

Result<std::shared_ptr<TableData>> TableData::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(r));
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 32)) {
    return Status::Corruption("implausible table row count");
  }
  auto table = std::make_shared<TableData>(schema);
  table->Reserve(static_cast<int64_t>(n));
  int arity = schema.num_fields();
  for (uint64_t i = 0; i < n; ++i) {
    Row row;
    row.reserve(static_cast<size_t>(arity));
    for (int c = 0; c < arity; ++c) {
      HELIX_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
      row.push_back(std::move(v));
    }
    HELIX_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace dataflow
}  // namespace helix
