#include "dataflow/table.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

const char* PayloadKindToString(PayloadKind k) {
  switch (k) {
    case PayloadKind::kTable:
      return "table";
    case PayloadKind::kText:
      return "text";
    case PayloadKind::kExamples:
      return "examples";
    case PayloadKind::kModel:
      return "model";
    case PayloadKind::kMetrics:
      return "metrics";
  }
  return "?";
}

TableData::TableData(Schema schema) : schema_(std::move(schema)) {
  builders_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int c = 0; c < schema_.num_fields(); ++c) {
    builders_.push_back(
        std::make_unique<ColumnBuilder>(schema_.field(c).type));
  }
}

TableData::TableData(Schema schema, std::vector<Row> rows)
    : TableData(std::move(schema)) {
  for (Row& row : rows) {
    // Arity matches by the caller's contract; mismatches are dropped the
    // same way the row store's (void)AppendRow call sites did.
    (void)AppendRow(std::move(row));
  }
}

Result<std::shared_ptr<TableData>> TableData::FromColumns(
    Schema schema, std::vector<std::shared_ptr<const class Column>> columns) {
  if (static_cast<int>(columns.size()) != schema.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("%zu columns do not match schema arity %d", columns.size(),
                  schema.num_fields()));
  }
  int64_t rows = columns.empty() ? 0 : columns[0]->length();
  for (const auto& col : columns) {
    if (col == nullptr) {
      return Status::InvalidArgument("null column handle");
    }
    if (col->length() != rows) {
      return Status::InvalidArgument(
          "columns disagree on row count");
    }
  }
  auto table = std::make_shared<TableData>();
  table->schema_ = std::move(schema);
  table->num_rows_ = rows;
  table->builders_.clear();
  table->columns_ = std::move(columns);
  return table;
}

void TableData::Seal() const {
  if (builders_.empty()) {
    return;  // already sealed (or zero-field table)
  }
  columns_.reserve(builders_.size());
  for (const auto& builder : builders_) {
    columns_.push_back(builder->Finish());
  }
  builders_.clear();
}

void TableData::Unseal() {
  if (columns_.empty()) {
    return;
  }
  builders_.reserve(columns_.size());
  for (const auto& col : columns_) {
    builders_.push_back(ColumnBuilder::FromColumn(*col));
  }
  columns_.clear();
}

Status TableData::AppendRow(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %d", row.size(),
                  schema_.num_fields()));
  }
  if (!columns_.empty()) {
    Unseal();
  }
  for (size_t c = 0; c < row.size(); ++c) {
    builders_[c]->Append(row[c]);
  }
  ++num_rows_;
  return Status::OK();
}

void TableData::Reserve(int64_t n) {
  for (const auto& builder : builders_) {
    builder->Reserve(n);
  }
}

Value TableData::at(int64_t r, int c) const {
  if (!builders_.empty()) {
    return builders_[static_cast<size_t>(c)]->ValueAt(r);
  }
  return columns_[static_cast<size_t>(c)]->GetValue(r);
}

std::shared_ptr<const Column> TableData::column(int c) const {
  Seal();
  return columns_[static_cast<size_t>(c)];
}

Result<std::shared_ptr<const Column>> TableData::Column(
    const std::string& name) const {
  int idx = schema_.IndexOf(name);
  if (idx < 0) {
    return Status::NotFound("no column named " + name);
  }
  return column(idx);
}

std::shared_ptr<TableData> TableData::Filter(
    const SelectionVector& sel) const {
  Seal();
  std::vector<std::shared_ptr<const class Column>> gathered;
  gathered.reserve(columns_.size());
  for (const auto& col : columns_) {
    gathered.push_back(col->Gather(sel));
  }
  auto out = FromColumns(schema_, std::move(gathered));
  // Gather preserves per-column lengths, so FromColumns cannot fail.
  return std::move(out).value();
}

int64_t TableData::SizeBytes() const {
  Seal();
  int64_t bytes = 64 + schema_.num_fields() * 24;
  for (const auto& col : columns_) {
    bytes += col->SizeBytes();
  }
  return bytes;
}

uint64_t TableData::Fingerprint() const {
  Seal();
  Hasher h;
  h.AddU64(schema_.Hash());
  h.AddU64(static_cast<uint64_t>(num_rows_));
  size_t cols = columns_.size();
  if (cols == 0 || num_rows_ == 0) {
    return h.Digest();
  }
  // Row-major combination of per-cell hashes (the v1 row store's exact
  // order), computed column-at-a-time in blocks so typed columns avoid
  // per-cell virtual dispatch into Value.
  constexpr int64_t kBlock = 1024;
  std::vector<std::vector<uint64_t>> block(cols);
  for (auto& b : block) {
    b.resize(static_cast<size_t>(std::min<int64_t>(kBlock, num_rows_)));
  }
  for (int64_t begin = 0; begin < num_rows_; begin += kBlock) {
    int64_t end = std::min(begin + kBlock, num_rows_);
    for (size_t c = 0; c < cols; ++c) {
      columns_[c]->CellHashes(begin, end, block[c].data());
    }
    for (int64_t r = 0; r < end - begin; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        h.AddU64(block[c][static_cast<size_t>(r)]);
      }
    }
  }
  return h.Digest();
}

void TableData::Serialize(ByteWriter* w) const {
  Seal();
  schema_.Serialize(w);
  w->PutU64(static_cast<uint64_t>(num_rows_));
  for (const auto& col : columns_) {
    col->Serialize(w);
  }
}

void TableData::SerializeToSpans(SpanWriter* s) const {
  Seal();
  schema_.Serialize(s->writer());
  s->writer()->PutU64(static_cast<uint64_t>(num_rows_));
  for (const auto& col : columns_) {
    col->SerializeToSpans(s);
  }
}

std::string TableData::DebugString() const {
  return StrFormat("table(%lld rows x %d cols)",
                   static_cast<long long>(num_rows()), schema_.num_fields());
}

Result<std::shared_ptr<TableData>> TableData::Deserialize(
    ByteReader* r, uint32_t format_version) {
  HELIX_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(r));
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 32)) {
    return Status::Corruption("implausible table row count");
  }
  int arity = schema.num_fields();
  if (format_version == 1) {
    // v1: row-major tagged cells, exactly the retired row store's wire
    // form. Parsed through builders so old disk stores load as columns.
    auto table = std::make_shared<TableData>(schema);
    table->Reserve(static_cast<int64_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      Row row;
      row.reserve(static_cast<size_t>(arity));
      for (int c = 0; c < arity; ++c) {
        HELIX_ASSIGN_OR_RETURN(Value v, Value::Deserialize(r));
        row.push_back(std::move(v));
      }
      HELIX_RETURN_IF_ERROR(table->AppendRow(std::move(row)));
    }
    table->Seal();
    return table;
  }
  // v2: column-contiguous payloads.
  std::vector<std::shared_ptr<const class Column>> columns;
  columns.reserve(static_cast<size_t>(arity));
  for (int c = 0; c < arity; ++c) {
    HELIX_ASSIGN_OR_RETURN(
        std::shared_ptr<const class Column> col,
        helix::dataflow::Column::Deserialize(r, static_cast<int64_t>(n)));
    columns.push_back(std::move(col));
  }
  HELIX_ASSIGN_OR_RETURN(auto table,
                         FromColumns(std::move(schema), std::move(columns)));
  // Zero-field tables carry their row count only in the header.
  table->num_rows_ = static_cast<int64_t>(n);
  return table;
}

}  // namespace dataflow
}  // namespace helix
