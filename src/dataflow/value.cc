#include "dataflow/value.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kNull:
    case ValueType::kString:
      break;
  }
  return Status::InvalidArgument(
      StrFormat("cannot convert %s value to numeric",
                ValueTypeToString(type())));
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case ValueType::kNull:
      return "<null>";
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return AsInt() < other.AsInt();
    case ValueType::kDouble:
      return AsDouble() < other.AsDouble();
    case ValueType::kBool:
      return AsBool() < other.AsBool();
    case ValueType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

uint64_t Value::Hash() const {
  Hasher h;
  h.AddU64(static_cast<uint64_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      h.AddI64(AsInt());
      break;
    case ValueType::kDouble:
      h.AddDouble(AsDouble());
      break;
    case ValueType::kBool:
      h.AddBool(AsBool());
      break;
    case ValueType::kString:
      h.Add(AsString());
      break;
  }
  return h.Digest();
}

void Value::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutI64(AsInt());
      break;
    case ValueType::kDouble:
      w->PutDouble(AsDouble());
      break;
    case ValueType::kBool:
      w->PutBool(AsBool());
      break;
    case ValueType::kString:
      w->PutString(AsString());
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      HELIX_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      HELIX_ASSIGN_OR_RETURN(double v, r->GetDouble());
      return Value(v);
    }
    case ValueType::kBool: {
      HELIX_ASSIGN_OR_RETURN(bool v, r->GetBool());
      return Value(v);
    }
    case ValueType::kString: {
      HELIX_ASSIGN_OR_RETURN(std::string v, r->GetString());
      return Value(std::move(v));
    }
  }
  return Status::Corruption(StrFormat("bad value type tag %d", tag));
}

}  // namespace dataflow
}  // namespace helix
