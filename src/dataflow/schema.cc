#include "dataflow/schema.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (int i = 0; i < num_fields(); ++i) {
    index_.emplace(fields_[static_cast<size_t>(i)].name, i);
  }
}

Schema Schema::AllStrings(const std::vector<std::string>& names) {
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (const std::string& n : names) {
    fields.push_back(Field{n, ValueType::kString});
  }
  return Schema(std::move(fields));
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Result<Schema> Schema::WithField(Field f) const {
  if (Contains(f.name)) {
    return Status::AlreadyExists("duplicate field: " + f.name);
  }
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(f));
  return Schema(std::move(fields));
}

uint64_t Schema::Hash() const {
  Hasher h;
  for (const Field& f : fields_) {
    h.Add(f.name).AddU64(static_cast<uint64_t>(f.type));
  }
  return h.Digest();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + ValueTypeToString(f.type));
  }
  return "(" + Join(parts, ", ") + ")";
}

void Schema::Serialize(ByteWriter* w) const {
  w->PutU64(fields_.size());
  for (const Field& f : fields_) {
    w->PutString(f.name);
    w->PutU8(static_cast<uint8_t>(f.type));
  }
}

Result<Schema> Schema::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 20)) {
    return Status::Corruption("implausible schema field count");
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HELIX_ASSIGN_OR_RETURN(std::string name, r->GetString());
    HELIX_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::Corruption("bad field type tag");
    }
    fields.push_back(Field{std::move(name), static_cast<ValueType>(type)});
  }
  return Schema(std::move(fields));
}

}  // namespace dataflow
}  // namespace helix
