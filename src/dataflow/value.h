// Dynamically-typed scalar values held in table cells.
//
// HELIX's pre-processing data structure keeps features in human-readable
// form (paper Section 2.1); tables of Values are that form. A Value is one
// of {null, int64, double, bool, string}.
#ifndef HELIX_DATAFLOW_VALUE_H_
#define HELIX_DATAFLOW_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/result.h"

namespace helix {
namespace dataflow {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
};

const char* ValueTypeToString(ValueType t);

/// A null-able dynamically typed scalar.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}   // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}         // NOLINT(google-explicit-constructor)
  Value(bool v) : v_(v) {}           // NOLINT(google-explicit-constructor)
  Value(std::string v)               // NOLINT(google-explicit-constructor)
      : v_(std::move(v)) {}
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; require the matching type.
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  bool AsBool() const { return std::get<bool>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric widening: int/double/bool as double; Status otherwise.
  Result<double> ToNumeric() const;

  /// Lossy display form ("<null>" for null).
  std::string ToDisplayString() const;

  /// Total ordering: first by type tag, then by value. Enables use as map
  /// keys (e.g. group-by).
  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return v_ != other.v_; }
  bool operator<(const Value& other) const;

  /// Stable 64-bit hash (used in operator output fingerprints).
  uint64_t Hash() const;

  void Serialize(ByteWriter* w) const;
  static Result<Value> Deserialize(ByteReader* r);

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> v_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_VALUE_H_
