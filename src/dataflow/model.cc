#include "dataflow/model.h"

#include "common/hash.h"
#include "common/strings.h"

namespace helix {
namespace dataflow {

double ModelData::InfoOr(const std::string& key, double fallback) const {
  auto it = info_.find(key);
  return it == info_.end() ? fallback : it->second;
}

int64_t ModelData::SizeBytes() const {
  int64_t bytes = 64 + static_cast<int64_t>(model_type_.size()) +
                  static_cast<int64_t>(weights_.size()) * 8;
  for (const auto& [k, v] : info_) {
    (void)v;
    bytes += 32 + static_cast<int64_t>(k.size());
  }
  return bytes;
}

uint64_t ModelData::Fingerprint() const {
  Hasher h;
  h.Add(model_type_).AddDouble(bias_).AddU64(weights_.size());
  for (double w : weights_) {
    h.AddDouble(w);
  }
  h.AddU64(info_.size());
  for (const auto& [k, v] : info_) {
    h.Add(k).AddDouble(v);
  }
  return h.Digest();
}

void ModelData::Serialize(ByteWriter* w) const {
  w->PutString(model_type_);
  w->PutDouble(bias_);
  w->PutU64(weights_.size());
  for (double x : weights_) {
    w->PutDouble(x);
  }
  w->PutU64(info_.size());
  for (const auto& [k, v] : info_) {
    w->PutString(k);
    w->PutDouble(v);
  }
}

std::string ModelData::DebugString() const {
  return StrFormat("model(%s, %zu weights)", model_type_.c_str(),
                   weights_.size());
}

Result<std::shared_ptr<ModelData>> ModelData::Deserialize(ByteReader* r) {
  HELIX_ASSIGN_OR_RETURN(std::string type, r->GetString());
  HELIX_ASSIGN_OR_RETURN(double bias, r->GetDouble());
  HELIX_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > (1ULL << 30)) {
    return Status::Corruption("implausible weight count");
  }
  std::vector<double> weights;
  weights.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HELIX_ASSIGN_OR_RETURN(double w, r->GetDouble());
    weights.push_back(w);
  }
  auto model =
      std::make_shared<ModelData>(std::move(type), std::move(weights), bias);
  HELIX_ASSIGN_OR_RETURN(uint64_t num_info, r->GetU64());
  if (num_info > (1ULL << 20)) {
    return Status::Corruption("implausible model info count");
  }
  for (uint64_t i = 0; i < num_info; ++i) {
    HELIX_ASSIGN_OR_RETURN(std::string k, r->GetString());
    HELIX_ASSIGN_OR_RETURN(double v, r->GetDouble());
    model->SetInfo(k, v);
  }
  return model;
}

}  // namespace dataflow
}  // namespace helix
