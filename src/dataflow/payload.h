// Base class for intermediate-result payloads.
//
// Every node in a HELIX workflow DAG produces a DataCollection wrapping one
// of a small set of payload kinds: relational tables, text corpora, ML
// example matrices, trained models, or metric maps. The materialization
// optimizer reasons about payloads only through SizeBytes(); the executor
// verifies plan-invariance through Fingerprint().
#ifndef HELIX_DATAFLOW_PAYLOAD_H_
#define HELIX_DATAFLOW_PAYLOAD_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/spans.h"

namespace helix {
namespace dataflow {

/// Discriminator for payload serialization.
enum class PayloadKind : uint8_t {
  kTable = 1,
  kText = 2,
  kExamples = 3,
  kModel = 4,
  kMetrics = 5,
};

const char* PayloadKindToString(PayloadKind k);

/// Immutable-after-construction result payload.
class DataPayload {
 public:
  virtual ~DataPayload() = default;

  virtual PayloadKind kind() const = 0;

  /// Approximate in-memory footprint; the materialization optimizer
  /// compares this against the remaining storage budget.
  virtual int64_t SizeBytes() const = 0;

  /// Deterministic content hash. Two payloads with equal fingerprints are
  /// treated as identical results (used to assert optimized == unoptimized
  /// execution).
  virtual uint64_t Fingerprint() const = 0;

  /// Appends the payload body (excluding the kind tag) to `w`.
  virtual void Serialize(ByteWriter* w) const = 0;

  /// Span-list variant of Serialize: emits the identical byte stream,
  /// borrowing already-contiguous bodies into `s` instead of copying
  /// where the payload supports it. The payload must outlive the span
  /// list. Default: serialize into the span writer's owned scratch
  /// (correct for every payload; tables override with real borrowing).
  virtual void SerializeToSpans(SpanWriter* s) const {
    Serialize(s->writer());
  }

  /// One-line human-readable summary, e.g. "table(32561 rows x 15 cols)".
  virtual std::string DebugString() const = 0;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_PAYLOAD_H_
