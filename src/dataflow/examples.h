// ML-ready example matrix payload: sparse feature vectors + labels plus the
// feature dictionary mapping indices back to human-readable names.
#ifndef HELIX_DATAFLOW_EXAMPLES_H_
#define HELIX_DATAFLOW_EXAMPLES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/features.h"
#include "dataflow/payload.h"

namespace helix {
namespace dataflow {

/// A dataset of supervised examples sharing one feature dictionary.
class ExamplesData final : public DataPayload {
 public:
  ExamplesData() : dict_(std::make_shared<FeatureDict>()) {}
  explicit ExamplesData(std::shared_ptr<FeatureDict> dict)
      : dict_(std::move(dict)) {}

  const FeatureDict& dict() const { return *dict_; }
  const std::shared_ptr<FeatureDict>& shared_dict() const { return dict_; }
  FeatureDict* mutable_dict() { return dict_.get(); }

  int64_t num_examples() const {
    return static_cast<int64_t>(examples_.size());
  }
  const std::vector<Example>& examples() const { return examples_; }
  const Example& example(int64_t i) const {
    return examples_[static_cast<size_t>(i)];
  }

  void Add(Example e) { examples_.push_back(std::move(e)); }
  void Reserve(int64_t n) { examples_.reserve(static_cast<size_t>(n)); }

  /// Number of distinct feature dimensions (dictionary size).
  int32_t num_features() const { return dict_->size(); }

  PayloadKind kind() const override { return PayloadKind::kExamples; }
  int64_t SizeBytes() const override;
  uint64_t Fingerprint() const override;
  void Serialize(ByteWriter* w) const override;
  std::string DebugString() const override;

  static Result<std::shared_ptr<ExamplesData>> Deserialize(ByteReader* r);

 private:
  std::shared_ptr<FeatureDict> dict_;
  std::vector<Example> examples_;
};

}  // namespace dataflow
}  // namespace helix

#endif  // HELIX_DATAFLOW_EXAMPLES_H_
