// The streaming-append application (workload scenario "stream").
//
// A two-source variant of the Census workflow for periodic data arrival:
// a *fixed* base table trains the model (the prefix of the DAG), and a
// *growing* stream table is scored and evaluated by it (the suffix).
// Appending a batch only changes the stream FileSource's parameters, so
// every prefix signature — scan, extractors, assembled examples, the
// trained model — is unchanged and hits the store; the min-cut planner
// loads the model at the reuse frontier and recomputes only the suffix.
// This is the materialization win the streaming scenario exists to
// measure, and tests/trace_test.cc asserts it node-by-node.
//
// Feature-space alignment: the suffix assembles its examples over
// (base_train rows, then stream rows), sharing the base_train row prefix
// with the training assembly (base_train rows, then holdout rows).
// AssembleExamples interns features deterministically in row order, so
// every feature the model was trained on has the same index in the
// suffix's space; stream-only features land past the weight vector and
// contribute zero (SparseVector::Dot skips out-of-range indices).
#ifndef HELIX_APPS_STREAM_APP_H_
#define HELIX_APPS_STREAM_APP_H_

#include <string>

#include "core/std_ops.h"
#include "core/workflow.h"
#include "ml/evaluation.h"

namespace helix {
namespace apps {

/// Knobs of the streaming workflow. Between iterations only stream_path
/// changes (pointing at a longer cumulative batch file); everything else
/// stays fixed so the prefix keeps its signatures.
struct StreamConfig {
  /// Fixed training rows; also the row prefix of the scoring assembly.
  std::string base_train_path;
  /// Small fixed evaluation split for the training assembly's test side.
  std::string holdout_path;
  /// Cumulative stream rows scored by the model; grows every iteration.
  std::string stream_path;

  int age_bins = 10;
  core::ops::LearnerConfig learner;
  ml::BinaryMetricsOptions eval;
};

/// Builds the two-source workflow; outputs are the stream predictions and
/// their evaluation.
core::Workflow BuildStreamWorkflow(const StreamConfig& config);

/// Node names of the DAG prefix (training side): after the first
/// iteration, appending stream data must leave all of these load-or-prune
/// (never recomputed). Terminated by nullptr.
extern const char* const kStreamPrefixNodes[];
/// Node names of the DAG suffix (scoring side): the nodes an append
/// legitimately invalidates. Terminated by nullptr.
extern const char* const kStreamSuffixNodes[];

}  // namespace apps
}  // namespace helix

#endif  // HELIX_APPS_STREAM_APP_H_
