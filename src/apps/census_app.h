// The Census application (paper Section 3, application 1; Figure 1a).
//
// A binary classification workflow over UCI-Adult-style demographic data:
// predict whether income exceeds $50K. The workflow mirrors Figure 1a
// line-by-line: FileSource -> CSVScanner -> FieldExtractors ->
// {Bucketizer, InteractionFeature} -> AssembleExamples -> Learner ->
// Predictor -> Evaluator. All field extractors are always *declared*
// (as in the DSL program); which ones feed the model is controlled by
// CensusConfig flags — disabled extractors are pruned by program slicing,
// exactly the paper's feature-selection story.
//
// MakeCensusIterationScript returns the scripted sequence of human edits
// used by the Figure 2(b) benchmark (purple = data pre-processing edits,
// orange = ML edits, green = post-processing edits).
#ifndef HELIX_APPS_CENSUS_APP_H_
#define HELIX_APPS_CENSUS_APP_H_

#include <functional>
#include <string>
#include <vector>

#include "core/std_ops.h"
#include "core/version_manager.h"
#include "core/workflow.h"
#include "ml/evaluation.h"

namespace helix {
namespace apps {

/// Tunable knobs of the Census workflow; every knob maps to an operator
/// parameter, so editing one is a tracked workflow change.
struct CensusConfig {
  std::string train_path;
  std::string test_path;

  // Feature selection (which extractors feed `income`).
  bool use_edu = true;
  bool use_occ = false;
  bool use_age_bucket = true;
  bool use_edu_x_occ = true;
  bool use_capital_loss = true;
  bool use_marital_status = false;
  bool use_race = false;
  bool use_hours = false;
  bool use_sex = false;

  /// Bucket count for the age Bucketizer.
  int age_bins = 10;

  /// Learner hyperparameters (paper line 16).
  core::ops::LearnerConfig learner;

  /// Evaluation configuration (the checkResults Reducer).
  ml::BinaryMetricsOptions eval;
};

/// Builds the workflow for a configuration.
core::Workflow BuildCensusWorkflow(const CensusConfig& config);

/// One scripted human edit.
struct ScriptedIteration {
  std::string description;
  core::ChangeCategory category = core::ChangeCategory::kInitial;
  std::function<void(CensusConfig*)> mutate;  // no-op for the initial step
};

/// The 10-iteration script used by the Figure 2(b) reproduction. The mix
/// of change types follows the paper's narrative: pre-processing changes
/// (adding/removing features), ML changes (hyperparameters, model family),
/// and post-processing changes (metrics, threshold).
std::vector<ScriptedIteration> MakeCensusIterationScript();

/// True if DeepDive could express this edit: its ML and evaluation
/// components are not user-configurable (paper Section 2.4), so only
/// pre-processing edits are runnable — the reason Figure 2(b) has missing
/// DeepDive data beyond iteration 2.
bool DeepDiveSupports(const ScriptedIteration& iteration);

}  // namespace apps
}  // namespace helix

#endif  // HELIX_APPS_CENSUS_APP_H_
