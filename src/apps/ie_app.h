// The Information Extraction application (paper Section 3, application 2).
//
// Structured prediction over unstructured news text: identify person
// mentions. Mirrors the paper's description — "this workflow requires more
// data pre-processing steps to enable learning": CorpusSource ->
// SentenceTokenizer -> TokenFeaturizer -> Learner -> Predictor ->
// MentionDecoder -> SpanEvaluator. Pre-processing dominates the runtime,
// so cross-iteration reuse matters even more than in Census.
#ifndef HELIX_APPS_IE_APP_H_
#define HELIX_APPS_IE_APP_H_

#include <functional>
#include <string>
#include <vector>

#include "core/std_ops.h"
#include "core/version_manager.h"
#include "core/workflow.h"
#include "nlp/mention_decoder.h"
#include "nlp/token_features.h"

namespace helix {
namespace apps {

/// Tunable knobs of the IE workflow.
struct IeConfig {
  std::string corpus_path;
  /// Train/test split by document index.
  double train_frac = 0.7;
  /// Token feature families (pre-processing iterations toggle these).
  nlp::TokenFeatureOptions features;
  /// Learner hyperparameters.
  core::ops::LearnerConfig learner;
  /// Span decoding (post-processing).
  nlp::MentionDecoderOptions decoder;

  IeConfig() {
    features.word_identity = true;
    features.shape = true;
    learner.model_type = "lr";
    learner.reg_param = 0.01;
    learner.learning_rate = 0.5;
    learner.epochs = 5;
  }
};

/// Builds the IE workflow for a configuration.
core::Workflow BuildIeWorkflow(const IeConfig& config);

/// One scripted human edit to the IE workflow.
struct IeScriptedIteration {
  std::string description;
  core::ChangeCategory category = core::ChangeCategory::kInitial;
  std::function<void(IeConfig*)> mutate;
};

/// The 10-iteration script used by the Figure 2(a) reproduction.
std::vector<IeScriptedIteration> MakeIeIterationScript();

/// DeepDive expressibility for IE edits (pre-processing only, as for
/// Census).
bool DeepDiveSupportsIe(const IeScriptedIteration& iteration);

}  // namespace apps
}  // namespace helix

#endif  // HELIX_APPS_IE_APP_H_
