#include "apps/ie_app.h"

namespace helix {
namespace apps {

using core::NodeRef;
using core::Workflow;
namespace ops = core::ops;

core::Workflow BuildIeWorkflow(const IeConfig& config) {
  Workflow wf("ie");

  NodeRef corpus = wf.Add(ops::CorpusSource("corpus", config.corpus_path));
  NodeRef tokens = wf.Add(ops::SentenceTokenizer("tokens"), {corpus});
  NodeRef feats = wf.Add(
      ops::TokenFeaturizer("tokenFeats", config.features, config.train_frac),
      {tokens});
  NodeRef model = wf.Add(ops::Learner("mentionModel", config.learner),
                         {feats});
  NodeRef preds = wf.Add(ops::Predictor("tokenPreds"), {model, feats});
  NodeRef mentions = wf.Add(ops::MentionDecoder("mentions", config.decoder),
                            {tokens, preds});
  NodeRef checked = wf.Add(
      ops::SpanEvaluator("checked", config.train_frac), {corpus, mentions});

  wf.MarkOutput(mentions);
  wf.MarkOutput(checked);
  return wf;
}

std::vector<IeScriptedIteration> MakeIeIterationScript() {
  using core::ChangeCategory;
  std::vector<IeScriptedIteration> script;
  script.push_back({"initial version (identity + shape features)",
                    ChangeCategory::kInitial, [](IeConfig*) {}});
  script.push_back({"add gazetteer features",
                    ChangeCategory::kDataPreprocessing,
                    [](IeConfig* c) { c->features.gazetteer = true; }});
  script.push_back({"more epochs", ChangeCategory::kMachineLearning,
                    [](IeConfig* c) { c->learner.epochs += 5; }});
  script.push_back({"add context window features",
                    ChangeCategory::kDataPreprocessing, [](IeConfig* c) {
                      c->features.context = true;
                      c->features.context_window = 1;
                    }});
  script.push_back({"lower decoder threshold to 0.4",
                    ChangeCategory::kEvaluation,
                    [](IeConfig* c) { c->decoder.threshold = 0.4; }});
  script.push_back({"add honorific and position cues",
                    ChangeCategory::kDataPreprocessing, [](IeConfig* c) {
                      c->features.honorific = true;
                      c->features.position = true;
                    }});
  script.push_back({"lower regularization",
                    ChangeCategory::kMachineLearning,
                    [](IeConfig* c) { c->learner.reg_param = 0.001; }});
  script.push_back({"add prefix/suffix features",
                    ChangeCategory::kDataPreprocessing,
                    [](IeConfig* c) { c->features.prefix_suffix = true; }});
  script.push_back({"cap mention length at 4 tokens",
                    ChangeCategory::kEvaluation,
                    [](IeConfig* c) { c->decoder.max_tokens = 4; }});
  script.push_back({"switch to averaged perceptron",
                    ChangeCategory::kMachineLearning, [](IeConfig* c) {
                      c->learner.model_type = "perceptron";
                      c->learner.epochs = 8;
                      c->learner.reg_param = 0.0;
                    }});
  return script;
}

bool DeepDiveSupportsIe(const IeScriptedIteration& iteration) {
  return iteration.category == core::ChangeCategory::kInitial ||
         iteration.category == core::ChangeCategory::kDataPreprocessing;
}

}  // namespace apps
}  // namespace helix
