#include "apps/census_app.h"

#include "datagen/census_gen.h"

namespace helix {
namespace apps {

using core::NodeRef;
using core::Workflow;
namespace ops = core::ops;

core::Workflow BuildCensusWorkflow(const CensusConfig& config) {
  Workflow wf("census");

  // data refers_to new FileSource(train=..., test=...)
  NodeRef data = wf.Add(
      ops::FileSource("data", config.train_path, config.test_path));
  // data is_read_into rows using CSVScanner(...)
  NodeRef rows = wf.Add(
      ops::CsvScanner("rows", datagen::CensusColumns()), {data});

  // Field extractors are always declared (paper Figure 1a lines 5-10);
  // unused ones are sliced at execution time.
  NodeRef age = wf.Add(ops::FieldExtractor("age", "age"), {rows});
  NodeRef edu = wf.Add(ops::FieldExtractor("edu", "education"), {rows});
  NodeRef occ = wf.Add(ops::FieldExtractor("occ", "occupation"), {rows});
  NodeRef cl =
      wf.Add(ops::FieldExtractor("cl", "capital_loss"), {rows});
  NodeRef race = wf.Add(ops::FieldExtractor("race", "race"), {rows});
  NodeRef ms =
      wf.Add(ops::FieldExtractor("ms", "marital_status"), {rows});
  NodeRef hours =
      wf.Add(ops::FieldExtractor("hours", "hours_per_week"), {rows});
  NodeRef sex = wf.Add(ops::FieldExtractor("sex", "sex"), {rows});
  NodeRef target = wf.Add(ops::FieldExtractor("target", "target"), {rows});

  // ageBucket refers_to Bucketizer(age, bins=10)
  NodeRef age_bucket =
      wf.Add(ops::Bucketizer("ageBucket", config.age_bins), {age});
  // eduXocc refers_to InteractionFeature(Array(edu, occ))
  NodeRef edu_x_occ =
      wf.Add(ops::InteractionFeature("eduXocc"), {edu, occ});

  // rows has_extractors(...): the enabled subset feeds the examples.
  std::vector<NodeRef> extractors;
  if (config.use_edu) {
    extractors.push_back(edu);
  }
  if (config.use_occ) {
    extractors.push_back(occ);
  }
  if (config.use_age_bucket) {
    extractors.push_back(age_bucket);
  }
  if (config.use_edu_x_occ) {
    extractors.push_back(edu_x_occ);
  }
  if (config.use_capital_loss) {
    extractors.push_back(cl);
  }
  if (config.use_marital_status) {
    extractors.push_back(ms);
  }
  if (config.use_race) {
    extractors.push_back(race);
  }
  if (config.use_hours) {
    extractors.push_back(hours);
  }
  if (config.use_sex) {
    extractors.push_back(sex);
  }
  // income results_from rows with_labels target
  std::vector<NodeRef> income_inputs = extractors;
  income_inputs.push_back(target);
  NodeRef income =
      wf.Add(ops::AssembleExamples("income", ">50K"), income_inputs);

  // incPred refers_to new Learner(modelType, regParam=...)
  NodeRef model = wf.Add(ops::Learner("incPred", config.learner), {income});
  // predictions results_from incPred on income
  NodeRef predictions =
      wf.Add(ops::Predictor("predictions"), {model, income});
  // checked results_from checkResults on testData(predictions)
  NodeRef checked =
      wf.Add(ops::Evaluator("checked", config.eval), {predictions});

  wf.MarkOutput(predictions);
  wf.MarkOutput(checked);
  return wf;
}

std::vector<ScriptedIteration> MakeCensusIterationScript() {
  using core::ChangeCategory;
  std::vector<ScriptedIteration> script;
  script.push_back({"initial version (Figure 1a program)",
                    ChangeCategory::kInitial, [](CensusConfig*) {}});
  script.push_back({"add marital_status feature",
                    ChangeCategory::kDataPreprocessing,
                    [](CensusConfig* c) { c->use_marital_status = true; }});
  script.push_back({"lower regularization to 0.01",
                    ChangeCategory::kMachineLearning,
                    [](CensusConfig* c) { c->learner.reg_param = 0.01; }});
  script.push_back({"add AUC to evaluation metrics",
                    ChangeCategory::kEvaluation,
                    [](CensusConfig* c) { c->eval.auc = true; }});
  script.push_back({"add race and hours_per_week features",
                    ChangeCategory::kDataPreprocessing,
                    [](CensusConfig* c) {
                      c->use_race = true;
                      c->use_hours = true;
                    }});
  script.push_back({"switch model to naive Bayes",
                    ChangeCategory::kMachineLearning, [](CensusConfig* c) {
                      c->learner.model_type = "nb";
                      c->learner.reg_param = 1.0;
                    }});
  script.push_back({"report log-loss and confusion counts",
                    ChangeCategory::kEvaluation, [](CensusConfig* c) {
                      c->eval.log_loss = true;
                      c->eval.confusion_counts = true;
                    }});
  script.push_back({"drop eduXocc interaction (feature selection)",
                    ChangeCategory::kDataPreprocessing,
                    [](CensusConfig* c) { c->use_edu_x_occ = false; }});
  script.push_back({"back to logistic regression, more epochs",
                    ChangeCategory::kMachineLearning, [](CensusConfig* c) {
                      c->learner.model_type = "lr";
                      c->learner.reg_param = 0.05;
                      c->learner.epochs = 30;
                    }});
  script.push_back({"raise decision threshold to 0.6",
                    ChangeCategory::kEvaluation,
                    [](CensusConfig* c) { c->eval.threshold = 0.6; }});
  return script;
}

bool DeepDiveSupports(const ScriptedIteration& iteration) {
  // DeepDive exposes feature engineering to the user but its ML and
  // evaluation components are fixed (paper Section 2.4).
  return iteration.category == core::ChangeCategory::kInitial ||
         iteration.category == core::ChangeCategory::kDataPreprocessing;
}

}  // namespace apps
}  // namespace helix
