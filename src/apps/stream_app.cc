#include "apps/stream_app.h"

#include "datagen/census_gen.h"

namespace helix {
namespace apps {

using core::NodeRef;
using core::Workflow;
namespace ops = core::ops;

const char* const kStreamPrefixNodes[] = {
    "base",    "baseRows",  "baseAge",    "baseEdu", "baseCl",
    "baseTarget", "baseAgeBucket", "baseExamples", "incPred", nullptr};
const char* const kStreamSuffixNodes[] = {
    "stream",    "streamRows",  "streamAge",    "streamEdu", "streamCl",
    "streamTarget", "streamAgeBucket", "streamExamples", "predictions",
    "checked", nullptr};

core::Workflow BuildStreamWorkflow(const StreamConfig& config) {
  Workflow wf("stream");

  // --- Prefix: train on the fixed base table -----------------------------
  NodeRef base = wf.Add(
      ops::FileSource("base", config.base_train_path, config.holdout_path));
  NodeRef base_rows =
      wf.Add(ops::CsvScanner("baseRows", datagen::CensusColumns()), {base});
  NodeRef base_age =
      wf.Add(ops::FieldExtractor("baseAge", "age"), {base_rows});
  NodeRef base_edu =
      wf.Add(ops::FieldExtractor("baseEdu", "education"), {base_rows});
  NodeRef base_cl =
      wf.Add(ops::FieldExtractor("baseCl", "capital_loss"), {base_rows});
  NodeRef base_target =
      wf.Add(ops::FieldExtractor("baseTarget", "target"), {base_rows});
  NodeRef base_age_bucket =
      wf.Add(ops::Bucketizer("baseAgeBucket", config.age_bins), {base_age});
  NodeRef base_examples =
      wf.Add(ops::AssembleExamples("baseExamples", ">50K"),
             {base_edu, base_age_bucket, base_cl, base_target});
  NodeRef model =
      wf.Add(ops::Learner("incPred", config.learner), {base_examples});

  // --- Suffix: score the growing stream with the trained model -----------
  // The stream source's *train* side is the same base table: it puts the
  // base rows first in the scoring assembly, pinning the trained feature
  // indexes (see the header comment).
  NodeRef stream = wf.Add(
      ops::FileSource("stream", config.base_train_path, config.stream_path));
  NodeRef stream_rows =
      wf.Add(ops::CsvScanner("streamRows", datagen::CensusColumns()),
             {stream});
  NodeRef stream_age =
      wf.Add(ops::FieldExtractor("streamAge", "age"), {stream_rows});
  NodeRef stream_edu =
      wf.Add(ops::FieldExtractor("streamEdu", "education"), {stream_rows});
  NodeRef stream_cl =
      wf.Add(ops::FieldExtractor("streamCl", "capital_loss"), {stream_rows});
  NodeRef stream_target =
      wf.Add(ops::FieldExtractor("streamTarget", "target"), {stream_rows});
  NodeRef stream_age_bucket = wf.Add(
      ops::Bucketizer("streamAgeBucket", config.age_bins), {stream_age});
  NodeRef stream_examples =
      wf.Add(ops::AssembleExamples("streamExamples", ">50K"),
             {stream_edu, stream_age_bucket, stream_cl, stream_target});
  NodeRef predictions =
      wf.Add(ops::Predictor("predictions"), {model, stream_examples});
  NodeRef checked =
      wf.Add(ops::Evaluator("checked", config.eval), {predictions});

  wf.MarkOutput(predictions);
  wf.MarkOutput(checked);
  return wf;
}

}  // namespace apps
}  // namespace helix
