#include "net/server.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "dataflow/simd.h"

namespace helix {
namespace net {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// On-the-wire size of a frame carrying `payload_bytes` of payload.
int64_t FrameWireBytes(size_t payload_bytes) {
  return static_cast<int64_t>(kFrameHeaderBytes + payload_bytes +
                              kFrameChecksumBytes);
}

}  // namespace

Result<std::unique_ptr<HelixServer>> HelixServer::Start(
    const ServerOptions& options, WorkflowResolver resolver) {
  if (!resolver) {
    return Status::InvalidArgument("HelixServer requires a resolver");
  }
  std::unique_ptr<HelixServer> server(
      new HelixServer(options, std::move(resolver)));
  HELIX_ASSIGN_OR_RETURN(server->service_,
                         service::SessionService::Open(options.service));
  obs::MetricsRegistry* metrics = server->service_->metrics();
  server->decode_micros_ = metrics->GetHistogram("server.decode_micros");
  server->queue_micros_ = metrics->GetHistogram("server.queue_micros");
  server->execute_micros_ = metrics->GetHistogram("server.execute_micros");
  server->reply_write_micros_ =
      metrics->GetHistogram("server.reply_write_micros");
  server->frames_in_total_ = metrics->GetCounter("server.frames_in");
  server->bytes_in_total_ = metrics->GetCounter("server.bytes_in");
  server->frames_out_total_ = metrics->GetCounter("server.frames_out");
  server->bytes_out_total_ = metrics->GetCounter("server.bytes_out");
  server->requests_total_ = metrics->GetCounter("server.requests");
  HELIX_ASSIGN_OR_RETURN(server->listener_,
                         TcpListener::Listen(options.host, options.port));
  server->accept_thread_ = std::thread([s = server.get()]() {
    s->AcceptLoop();
  });
  return server;
}

HelixServer::~HelixServer() { Stop(); }

void HelixServer::AcceptLoop() {
  while (true) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (accepted.status().IsFailedPrecondition()) {
        return;  // Stop() closed the listener: orderly shutdown
      }
      // Environmental (EMFILE under fd pressure, etc.): the server must
      // keep accepting once the pressure clears, not die silently.
      HELIX_LOG(Warning) << "accept failed, retrying: "
                         << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->conn = std::move(accepted).value();
    // A client that stops reading must not pin a pool worker forever on a
    // full send buffer; after the timeout the write fails and the
    // connection is dropped.
    connection->conn->SetSendTimeout(/*seconds=*/30);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap connections whose readers already finished (client hung up):
      // a long-running server must not accumulate one fd + thread per
      // past client until shutdown. Handler tasks still in flight keep
      // the Connection alive through their shared_ptr.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->reader.joinable()) {
            (*it)->reader.join();
          }
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(connection);
    }
    connection->reader = std::thread([this, connection]() {
      ReaderLoop(connection);
      connection->done.store(true, std::memory_order_release);
    });
  }
}

void HelixServer::ReaderLoop(std::shared_ptr<Connection> connection) {
  while (true) {
    uint64_t request_id = 0;
    int64_t read_start = SteadyNowMicros();
    Result<Frame> frame = ReadFrame(connection->conn.get(),
                                    options_.max_payload_bytes, &request_id);
    if (!frame.ok()) {
      // Clean close at a frame boundary is silent; anything else (bad
      // magic, corrupt checksum, oversized length, torn stream) gets a
      // best-effort error reply addressed to the parsed request id, then
      // the stream is dropped — after a framing error the byte stream has
      // no trustworthy next-frame boundary.
      if (!frame.status().IsNotFound()) {
        WriteReply(connection, request_id,
                   EncodeErrorReply(frame.status()));
        connection->conn->ShutdownBoth();
      }
      return;
    }
    // Decode phase: everything ReadFrame did — waiting for the request
    // bytes, header/checksum verification, payload copy. For a pipelining
    // client this is wire + parse time; for an idle connection it is
    // dominated by the wait for the next request.
    decode_micros_->Observe(SteadyNowMicros() - read_start);
    frames_in_total_->Add(1);
    bytes_in_total_->Add(FrameWireBytes(frame->payload.size()));
    connection->frames_in.fetch_add(1, std::memory_order_relaxed);
    connection->bytes_in.fetch_add(FrameWireBytes(frame->payload.size()),
                                   std::memory_order_relaxed);
    // Dispatch onto the shared pool: iterations of different sessions run
    // concurrently, bounded by the pool — the remote analogue of
    // SubmitIteration.
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++outstanding_;
    }
    int64_t enqueue_micros = SteadyNowMicros();
    bool scheduled = service_->pool()->Schedule(
        [this, connection, enqueue_micros,
         f = std::move(frame).value()]() mutable {
          HandleRequest(connection, std::move(f), enqueue_micros);
          std::lock_guard<std::mutex> lock(drain_mu_);
          if (--outstanding_ == 0) {
            drain_cv_.notify_all();
          }
        });
    if (!scheduled) {
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        if (--outstanding_ == 0) {
          drain_cv_.notify_all();
        }
      }
      WriteReply(connection, request_id,
                 EncodeErrorReply(Status::FailedPrecondition(
                     "server is shutting down")));
      return;
    }
  }
}

void HelixServer::HandleRequest(const std::shared_ptr<Connection>& connection,
                                Frame frame, int64_t enqueue_micros) {
  int64_t handler_start = SteadyNowMicros();
  queue_micros_->Observe(handler_start - enqueue_micros);
  requests_total_->Add(1);
  std::string reply;
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kOpenSession:
      reply = HandleOpenSession(frame);
      break;
    case Opcode::kRunIteration:
      reply = HandleRunIteration(frame);
      break;
    case Opcode::kGetCounters:
      reply = HandleGetCounters(frame);
      break;
    case Opcode::kGetMetrics:
      reply = HandleGetMetrics(frame);
      break;
    case Opcode::kGetTrace:
      reply = HandleGetTrace(frame);
      break;
    case Opcode::kFetchOutput:
      // Writes its own reply: the zero-copy span path needs the stored
      // payload alive across the write, so encode and write share a scope.
      HandleFetchOutput(connection, frame, handler_start);
      return;
    case Opcode::kShutdown:
      reply = EncodeEmptyReply();
      break;
    default:
      reply = EncodeErrorReply(Status::InvalidArgument(
          "unknown opcode " + std::to_string(frame.opcode)));
      break;
  }
  execute_micros_->Observe(SteadyNowMicros() - handler_start);
  WriteReply(connection, frame.request_id, std::move(reply));
  if (static_cast<Opcode>(frame.opcode) == Opcode::kShutdown) {
    // Ack first (above), act later: Stop() from a pool task would deadlock
    // the pool drain, so shutdown is recorded and surfaced through
    // WaitForShutdownRequest for the owner to act on. The ack is already
    // in the socket's send queue, so it survives the owner's teardown.
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
  }
}

std::string HelixServer::HandleOpenSession(const Frame& frame) {
  Result<std::string> name = DecodeOpenSessionRequest(frame.payload);
  if (!name.ok()) {
    return EncodeErrorReply(name.status());
  }
  Result<service::ServiceSession*> session =
      service_->CreateSession(name.value());
  if (!session.ok()) {
    return EncodeErrorReply(session.status());
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[session.value()->id()] = session.value();
  }
  return EncodeOpenSessionReply(session.value()->id());
}

std::string HelixServer::HandleRunIteration(const Frame& frame) {
  Result<RunIterationRequest> request =
      DecodeRunIterationRequest(frame.payload);
  if (!request.ok()) {
    return EncodeErrorReply(request.status());
  }
  service::ServiceSession* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(request->session_id);
    if (it != sessions_.end()) {
      session = it->second;
    }
  }
  if (session == nullptr) {
    return EncodeErrorReply(Status::NotFound(
        "no session with id " + std::to_string(request->session_id)));
  }
  Result<core::Workflow> workflow = resolver_(request->spec);
  if (!workflow.ok()) {
    return EncodeErrorReply(
        workflow.status().WithContext("resolving workflow spec"));
  }
  // Already on a pool worker: run the iteration here, exactly like an
  // in-process SubmitIteration task would.
  Result<core::IterationResult> result = service_->RunIteration(
      session, workflow.value(), request->description, request->category,
      &request->spec);
  if (!result.ok()) {
    return EncodeErrorReply(result.status());
  }
  RemoteIterationResult remote;
  remote.version_id = result->version_id;
  remote.num_computed = result->report.num_computed;
  remote.num_loaded = result->report.num_loaded;
  remote.num_shared = result->report.num_shared;
  remote.num_pruned = result->report.num_pruned;
  remote.num_materialized = result->report.num_materialized;
  remote.total_micros = result->report.total_micros;
  for (const auto& [output_name, data] : result->report.outputs) {
    const core::NodeExecution* node = result->report.FindNode(output_name);
    remote.outputs.push_back({output_name, data.Fingerprint(),
                              node != nullptr ? node->signature : 0});
  }
  return EncodeRunIterationReply(remote);
}

std::string HelixServer::HandleGetCounters(const Frame& frame) {
  Result<uint64_t> session_id = DecodeGetCountersRequest(frame.payload);
  if (!session_id.ok()) {
    return EncodeErrorReply(session_id.status());
  }
  if (session_id.value() == 0) {
    return EncodeCountersReply(service_->AggregateCounters());
  }
  service::ServiceSession* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id.value());
    if (it != sessions_.end()) {
      session = it->second;
    }
  }
  if (session == nullptr) {
    return EncodeErrorReply(Status::NotFound(
        "no session with id " + std::to_string(session_id.value())));
  }
  return EncodeCountersReply(session->counters());
}

std::string HelixServer::HandleGetMetrics(const Frame& frame) {
  Status empty = DecodeEmptyRequest(frame.payload, "GetMetrics");
  if (!empty.ok()) {
    return EncodeErrorReply(empty);
  }
  // Kernel invocation counts live in lock-free globals (dataflow/simd.h);
  // fold the deltas into the registry so the snapshot carries them.
  dataflow::simd::FoldCountersInto(service_->metrics());
  return EncodeTextReply(service_->metrics()->SnapshotJson());
}

std::string HelixServer::HandleGetTrace(const Frame& frame) {
  Status empty = DecodeEmptyRequest(frame.payload, "GetTrace");
  if (!empty.ok()) {
    return EncodeErrorReply(empty);
  }
  return EncodeTextReply(service_->trace()->ToChromeJson());
}

void HelixServer::HandleFetchOutput(
    const std::shared_ptr<Connection>& connection, const Frame& frame,
    int64_t handler_start) {
  Result<uint64_t> signature = DecodeFetchOutputRequest(frame.payload);
  if (!signature.ok()) {
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    WriteReply(connection, frame.request_id,
               EncodeErrorReply(signature.status()));
    return;
  }
  Result<dataflow::DataCollection> data =
      service_->store()->Get(signature.value());
  if (!data.ok()) {
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    WriteReply(connection, frame.request_id,
               EncodeErrorReply(data.status().WithContext(
                   "fetching output with signature " +
                   std::to_string(signature.value()))));
    return;
  }
  if (options_.zero_copy_replies) {
    // `data` stays in scope until WriteReplySpans returns: the span list
    // borrows the columns' own buffers.
    SpanWriter spans;
    EncodeFetchOutputReplyToSpans(data.value(), &spans);
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    WriteReplySpans(connection, frame.request_id, &spans);
    return;
  }
  std::string reply = EncodeFetchOutputReply(data.value());
  execute_micros_->Observe(SteadyNowMicros() - handler_start);
  WriteReply(connection, frame.request_id, std::move(reply));
}

void HelixServer::WriteReply(const std::shared_ptr<Connection>& connection,
                             uint64_t request_id, std::string payload) {
  Frame reply;
  reply.opcode = static_cast<uint8_t>(Opcode::kReply);
  reply.request_id = request_id;
  reply.payload = std::move(payload);
  int64_t write_start = SteadyNowMicros();
  std::lock_guard<std::mutex> lock(connection->write_mu);
  Status written = WriteFrame(connection->conn.get(), reply);
  if (written.ok()) {
    reply_write_micros_->Observe(SteadyNowMicros() - write_start);
    frames_out_total_->Add(1);
    bytes_out_total_->Add(FrameWireBytes(reply.payload.size()));
    connection->frames_out.fetch_add(1, std::memory_order_relaxed);
    connection->bytes_out.fetch_add(FrameWireBytes(reply.payload.size()),
                                    std::memory_order_relaxed);
  }
  if (!written.ok()) {
    // The client went away, stopped reading (send timeout), or the server
    // is tearing connections down; the iteration's effects on the shared
    // store are durable regardless. Shut the stream down so the reader
    // stops accepting work from a peer that cannot receive answers.
    HELIX_LOG(Info) << "dropping reply to request " << request_id << ": "
                    << written.ToString();
    connection->conn->ShutdownBoth();
  }
}

void HelixServer::WriteReplySpans(
    const std::shared_ptr<Connection>& connection, uint64_t request_id,
    SpanWriter* payload) {
  size_t payload_len = payload->TotalBytes();
  int64_t write_start = SteadyNowMicros();
  std::lock_guard<std::mutex> lock(connection->write_mu);
  Status written =
      WriteFrameSpans(connection->conn.get(),
                      static_cast<uint8_t>(Opcode::kReply), request_id,
                      payload);
  if (written.ok()) {
    reply_write_micros_->Observe(SteadyNowMicros() - write_start);
    frames_out_total_->Add(1);
    bytes_out_total_->Add(FrameWireBytes(payload_len));
    connection->frames_out.fetch_add(1, std::memory_order_relaxed);
    connection->bytes_out.fetch_add(FrameWireBytes(payload_len),
                                    std::memory_order_relaxed);
  } else {
    HELIX_LOG(Info) << "dropping reply to request " << request_id << ": "
                    << written.ToString();
    connection->conn->ShutdownBoth();
  }
}

void HelixServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [this]() { return shutdown_requested_ || stopped_; });
}

void HelixServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    shutdown_requested_ = true;
  }
  state_cv_.notify_all();

  // 1. No new connections. The listener may be absent when Start() failed
  // partway and the half-built server is being destroyed.
  if (listener_ != nullptr) {
    listener_->Close();
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // 2. No new requests: unblock and join every reader. Joining a reader
  //    that already exited on its own (client hung up earlier) is fine.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& connection : conns) {
    connection->conn->ShutdownBoth();
  }
  for (const auto& connection : conns) {
    if (connection->reader.joinable()) {
      connection->reader.join();
    }
  }
  // 3. Let in-flight handlers finish (their replies go to already-shutdown
  //    sockets and are dropped; their store effects are durable).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this]() { return outstanding_ == 0; });
  }
  // 4. Tear down the service: drains the pool and the background writer,
  //    then persists the shared stats registry. The pointer is detached
  //    under state_mu_ first so a concurrent service() reads nullptr
  //    rather than a service mid-destruction; the heavy destructor then
  //    runs unlocked.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.clear();
  }
  std::unique_ptr<service::SessionService> doomed;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    doomed = std::move(service_);
  }
  doomed.reset();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
}

}  // namespace net
}  // namespace helix
