#include "net/server.h"

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "dataflow/simd.h"

namespace helix {
namespace net {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// On-the-wire size of a frame carrying `payload_bytes` of payload.
int64_t FrameWireBytes(size_t payload_bytes) {
  return static_cast<int64_t>(kFrameHeaderBytes + payload_bytes +
                              kFrameChecksumBytes);
}

}  // namespace

// --------------------------------------------------------- connections ---

/// Thread mode: the connection of one blocking reader thread. Replies are
/// written synchronously on the pool worker, serialized by write_mu; the
/// SO_SNDTIMEO on the socket bounds how long a slow reader can pin a
/// worker.
struct HelixServer::ThreadConn : HelixServer::ClientConn {
  HelixServer* server = nullptr;
  std::unique_ptr<TcpConnection> conn;
  std::mutex write_mu;
  std::thread reader;
  std::atomic<bool> done{false};
  /// Dispatched-but-unanswered requests (the per-connection shed bound);
  /// the global bound rides on the server's outstanding_ drain gauge.
  std::atomic<int> inflight{0};

  void SendReply(uint64_t request_id, std::string payload) override {
    Frame reply;
    reply.opcode = static_cast<uint8_t>(Opcode::kReply);
    reply.request_id = request_id;
    reply.payload = std::move(payload);
    size_t payload_bytes = reply.payload.size();
    int64_t write_start = SteadyNowMicros();
    std::lock_guard<std::mutex> lock(write_mu);
    Status written = WriteFrame(conn.get(), reply);
    if (written.ok()) {
      server->AccountReplyOut(this, payload_bytes, write_start);
    } else {
      OnWriteFailure(request_id, written);
    }
  }

  void SendReplySpans(uint64_t request_id,
                      std::unique_ptr<SpanWriter> payload,
                      std::shared_ptr<const void> pin) override {
    // Synchronous gathered write: the caller's pin outlives the call, so
    // it carries no further duty here.
    size_t payload_bytes = payload->TotalBytes();
    int64_t write_start = SteadyNowMicros();
    std::lock_guard<std::mutex> lock(write_mu);
    Status written =
        WriteFrameSpans(conn.get(), static_cast<uint8_t>(Opcode::kReply),
                        request_id, payload.get());
    if (written.ok()) {
      server->AccountReplyOut(this, payload_bytes, write_start);
    } else {
      OnWriteFailure(request_id, written);
    }
    (void)pin;
  }

  bool WaitRepliesFlushed(int /*timeout_ms*/) override {
    return true;  // writes are synchronous: sent means in the kernel
  }

  /// Classifies a failed reply write by the socket's errno: a send
  /// timeout (EAGAIN under SO_SNDTIMEO) is a slow reader that stopped
  /// draining; everything else (EPIPE, ECONNRESET, ...) is a peer that
  /// vanished. Either way the stream is shut down so the reader stops
  /// accepting work from a peer that cannot receive answers; the
  /// iteration's effects on the shared store are durable regardless.
  void OnWriteFailure(uint64_t request_id, const Status& written) {
    int err = conn->last_errno();
    if (err == EAGAIN || err == EWOULDBLOCK) {
      server->reply_timeouts_->Add(1);
      HELIX_LOG(Warning) << "reply to request " << request_id
                         << " timed out (slow reader): "
                         << written.ToString();
    } else {
      server->reply_drops_->Add(1);
      HELIX_LOG(Info) << "dropping reply to request " << request_id << ": "
                      << written.ToString();
    }
    conn->ShutdownBoth();
  }
};

/// Event-loop mode: a thin handle over the loop-owned connection. Replies
/// are *enqueued* (the loop thread flushes on write readiness), so the
/// reply_write histogram measures enqueue cost, not wire time; write
/// failures surface through OnLoopHangup instead of a Status here. Holding
/// the loop Conn weakly keeps `Conn::user -> EventConn` from becoming a
/// reference cycle: when the loop tears the connection down, queued
/// handler tasks see an expired handle and drop their replies.
struct HelixServer::EventConn : HelixServer::ClientConn {
  HelixServer* server = nullptr;
  std::weak_ptr<EventLoop::Conn> loop_conn;

  void SendReply(uint64_t request_id, std::string payload) override {
    std::shared_ptr<EventLoop::Conn> lc = loop_conn.lock();
    if (lc == nullptr) {
      return;  // torn down; its in-flight slots were already returned
    }
    Frame reply;
    reply.opcode = static_cast<uint8_t>(Opcode::kReply);
    reply.request_id = request_id;
    reply.payload = std::move(payload);
    size_t payload_bytes = reply.payload.size();
    int64_t enqueue_start = SteadyNowMicros();
    lc->SendFrame(reply);
    server->AccountReplyOut(this, payload_bytes, enqueue_start);
  }

  void SendReplySpans(uint64_t request_id,
                      std::unique_ptr<SpanWriter> payload,
                      std::shared_ptr<const void> pin) override {
    std::shared_ptr<EventLoop::Conn> lc = loop_conn.lock();
    if (lc == nullptr) {
      return;
    }
    size_t payload_bytes = payload->TotalBytes();
    int64_t enqueue_start = SteadyNowMicros();
    lc->SendFrameSpans(static_cast<uint8_t>(Opcode::kReply), request_id,
                       std::move(payload), std::move(pin));
    server->AccountReplyOut(this, payload_bytes, enqueue_start);
  }

  bool WaitRepliesFlushed(int timeout_ms) override {
    std::shared_ptr<EventLoop::Conn> lc = loop_conn.lock();
    return lc == nullptr || lc->WaitOutboundDrained(timeout_ms);
  }
};

// -------------------------------------------------------------- startup ---

Result<std::unique_ptr<HelixServer>> HelixServer::Start(
    const ServerOptions& options, WorkflowResolver resolver) {
  if (!resolver) {
    return Status::InvalidArgument("HelixServer requires a resolver");
  }
  std::unique_ptr<HelixServer> server(
      new HelixServer(options, std::move(resolver)));
  HELIX_ASSIGN_OR_RETURN(server->service_,
                         service::SessionService::Open(options.service));
  obs::MetricsRegistry* metrics = server->service_->metrics();
  server->decode_micros_ = metrics->GetHistogram("server.decode_micros");
  server->queue_micros_ = metrics->GetHistogram("server.queue_micros");
  server->execute_micros_ = metrics->GetHistogram("server.execute_micros");
  server->reply_write_micros_ =
      metrics->GetHistogram("server.reply_write_micros");
  server->frames_in_total_ = metrics->GetCounter("server.frames_in");
  server->bytes_in_total_ = metrics->GetCounter("server.bytes_in");
  server->frames_out_total_ = metrics->GetCounter("server.frames_out");
  server->bytes_out_total_ = metrics->GetCounter("server.bytes_out");
  server->requests_total_ = metrics->GetCounter("server.requests");
  // Registered up front (not lazily on first event) so every snapshot
  // carries them and telemetry checks can assert presence even at zero.
  server->requests_shed_ = metrics->GetCounter("server.requests_shed");
  server->reply_drops_ = metrics->GetCounter("server.reply_drops");
  server->reply_timeouts_ = metrics->GetCounter("server.reply_timeouts");
  HELIX_ASSIGN_OR_RETURN(server->listener_,
                         TcpListener::Listen(options.host, options.port));
  if (options.event_loop) {
    EventLoopOptions loop_options;
    loop_options.io_threads = options.io_threads;
    loop_options.max_payload_bytes = options.max_payload_bytes;
    loop_options.max_inflight_per_connection =
        options.max_inflight_per_connection;
    loop_options.max_inflight_total = options.max_inflight_total;
    loop_options.max_outbound_queue_bytes = options.max_outbound_queue_bytes;
    EventLoop::Handlers handlers;
    HelixServer* raw = server.get();
    handlers.on_accept = [raw](const std::shared_ptr<EventLoop::Conn>& c) {
      raw->OnLoopAccept(c);
    };
    handlers.on_frame = [raw](const std::shared_ptr<EventLoop::Conn>& c,
                              Frame&& frame, int64_t decode_micros) {
      raw->OnLoopFrame(c, std::move(frame), decode_micros);
    };
    handlers.on_shed = [raw](const std::shared_ptr<EventLoop::Conn>&) {
      raw->requests_shed_->Add(1);
    };
    handlers.on_hangup = [raw](const std::shared_ptr<EventLoop::Conn>& c,
                               HangupReason reason) {
      raw->OnLoopHangup(c, reason);
    };
    HELIX_ASSIGN_OR_RETURN(
        server->event_loop_,
        EventLoop::Start(server->listener_.get(), loop_options,
                         std::move(handlers)));
  } else {
    server->accept_thread_ = std::thread([s = server.get()]() {
      s->AcceptLoop();
    });
  }
  return server;
}

HelixServer::~HelixServer() { Stop(); }

int64_t HelixServer::num_connections() const {
  if (event_loop_ != nullptr) {
    return event_loop_->num_connections();
  }
  return thread_mode_connections_.load(std::memory_order_acquire);
}

// -------------------------------------------------- thread-mode transport ---

void HelixServer::AcceptLoop() {
  while (true) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) {
      if (accepted.status().IsFailedPrecondition()) {
        return;  // Stop() closed the listener: orderly shutdown
      }
      // Environmental (EMFILE under fd pressure, etc.): the server must
      // keep accepting once the pressure clears, not die silently.
      HELIX_LOG(Warning) << "accept failed, retrying: "
                         << accepted.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    auto connection = std::make_shared<ThreadConn>();
    connection->server = this;
    connection->conn = std::move(accepted).value();
    // A client that stops reading must not pin a pool worker forever on a
    // full send buffer; after the timeout the write fails, is classified
    // as a reply timeout, and the connection is dropped.
    connection->conn->SetSendTimeout(options_.send_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap connections whose readers already finished (client hung up):
      // a long-running server must not accumulate one fd + thread per
      // past client until shutdown. Handler tasks still in flight keep
      // the ThreadConn alive through their shared_ptr.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->reader.joinable()) {
            (*it)->reader.join();
          }
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(connection);
    }
    thread_mode_connections_.fetch_add(1, std::memory_order_acq_rel);
    connection->reader = std::thread([this, connection]() {
      ReaderLoop(connection);
      thread_mode_connections_.fetch_sub(1, std::memory_order_acq_rel);
      connection->done.store(true, std::memory_order_release);
    });
  }
}

void HelixServer::ReaderLoop(std::shared_ptr<ThreadConn> connection) {
  while (true) {
    uint64_t request_id = 0;
    int64_t read_start = SteadyNowMicros();
    Result<Frame> frame = ReadFrame(connection->conn.get(),
                                    options_.max_payload_bytes, &request_id);
    if (!frame.ok()) {
      // Clean close at a frame boundary is silent; anything else (bad
      // magic, corrupt checksum, oversized length, torn stream) gets a
      // best-effort error reply addressed to the parsed request id, then
      // the stream is dropped — after a framing error the byte stream has
      // no trustworthy next-frame boundary.
      if (!frame.status().IsNotFound()) {
        connection->SendReply(request_id,
                              EncodeErrorReply(frame.status()));
        connection->conn->ShutdownBoth();
      }
      break;
    }
    // Decode phase: everything ReadFrame did — waiting for the request
    // bytes, header/checksum verification, payload copy. For a pipelining
    // client this is wire + parse time; for an idle connection it is
    // dominated by the wait for the next request.
    decode_micros_->Observe(SteadyNowMicros() - read_start);
    AccountFrameIn(connection.get(), frame->payload.size());
    // Backpressure, same policy (and reply bytes) as the event loop:
    // shed past either in-flight bound, and keep the connection up —
    // shedding is an answer, not a punishment.
    bool shed = connection->inflight.load(std::memory_order_acquire) >=
                options_.max_inflight_per_connection;
    if (!shed) {
      std::lock_guard<std::mutex> lock(drain_mu_);
      shed = outstanding_ >= options_.max_inflight_total;
    }
    if (shed) {
      requests_shed_->Add(1);
      connection->SendReply(
          request_id,
          EncodeErrorReply(Status::ResourceExhausted(
              "server overloaded: in-flight request limit reached")));
      continue;
    }
    connection->inflight.fetch_add(1, std::memory_order_acq_rel);
    bool scheduled = DispatchFrame(
        connection, std::move(frame).value(),
        [connection]() {
          connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
        });
    if (!scheduled) {
      break;  // shutting down; the dispatch already answered
    }
  }
  // Close-on-disconnect: retire the sessions this connection opened, so a
  // client that drops (or crashes) does not leak server-side sessions.
  CloseConnectionSessions(connection.get());
}

// --------------------------------------------------- event-mode transport ---

void HelixServer::OnLoopAccept(const std::shared_ptr<EventLoop::Conn>& conn) {
  auto connection = std::make_shared<EventConn>();
  connection->server = this;
  connection->loop_conn = conn;
  conn->user = connection;
}

void HelixServer::OnLoopFrame(const std::shared_ptr<EventLoop::Conn>& conn,
                              Frame&& frame, int64_t decode_micros) {
  std::shared_ptr<EventConn> connection =
      std::static_pointer_cast<EventConn>(conn->user);
  decode_micros_->Observe(decode_micros);
  AccountFrameIn(connection.get(), frame.payload.size());
  // A failed dispatch (pool refusing work during shutdown) already sent
  // the error reply; the loop connection outlives it either way.
  (void)DispatchFrame(connection, std::move(frame), nullptr);
}

void HelixServer::OnLoopHangup(const std::shared_ptr<EventLoop::Conn>& conn,
                               HangupReason reason) {
  std::shared_ptr<EventConn> connection =
      std::static_pointer_cast<EventConn>(conn->user);
  if (connection == nullptr) {
    return;
  }
  switch (reason) {
    case HangupReason::kSlowReader:
      // The event-mode analogue of the blocking path's send timeout: the
      // peer stopped draining replies and its queued bytes blew the
      // budget.
      reply_timeouts_->Add(1);
      HELIX_LOG(Warning) << "dropping connection " << conn->id()
                         << ": slow reader exceeded the outbound-queue "
                            "budget, queued replies dropped";
      break;
    case HangupReason::kPeerReset:
      // The peer vanished (reset, torn stream): anything queued for it
      // was dropped with the connection.
      reply_drops_->Add(1);
      break;
    case HangupReason::kPeerClosed:
    case HangupReason::kProtocolError:
    case HangupReason::kServerStop:
      break;
  }
  CloseConnectionSessions(connection.get());
}

// ------------------------------------------------------------- dispatch ---

bool HelixServer::DispatchFrame(const std::shared_ptr<ClientConn>& conn,
                                Frame frame, std::function<void()> on_done) {
  // Dispatch onto the shared pool: iterations of different sessions run
  // concurrently, bounded by the pool — the remote analogue of
  // SubmitIteration.
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++outstanding_;
  }
  uint64_t request_id = frame.request_id;
  int64_t enqueue_micros = SteadyNowMicros();
  bool scheduled = service_->pool()->Schedule(
      [this, conn, enqueue_micros, on_done,
       f = std::move(frame)]() mutable {
        HandleRequest(conn, std::move(f), enqueue_micros);
        if (on_done) {
          on_done();
        }
        std::lock_guard<std::mutex> lock(drain_mu_);
        if (--outstanding_ == 0) {
          drain_cv_.notify_all();
        }
      });
  if (!scheduled) {
    if (on_done) {
      on_done();
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (--outstanding_ == 0) {
        drain_cv_.notify_all();
      }
    }
    conn->SendReply(request_id,
                    EncodeErrorReply(Status::FailedPrecondition(
                        "server is shutting down")));
  }
  return scheduled;
}

void HelixServer::HandleRequest(const std::shared_ptr<ClientConn>& connection,
                                Frame frame, int64_t enqueue_micros) {
  int64_t handler_start = SteadyNowMicros();
  queue_micros_->Observe(handler_start - enqueue_micros);
  requests_total_->Add(1);
  std::string reply;
  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kOpenSession:
      reply = HandleOpenSession(connection, frame);
      break;
    case Opcode::kCloseSession:
      reply = HandleCloseSession(connection, frame);
      break;
    case Opcode::kRunIteration:
      reply = HandleRunIteration(frame);
      break;
    case Opcode::kGetCounters:
      reply = HandleGetCounters(frame);
      break;
    case Opcode::kGetMetrics:
      reply = HandleGetMetrics(frame);
      break;
    case Opcode::kGetTrace:
      reply = HandleGetTrace(frame);
      break;
    case Opcode::kFetchOutput:
      // Delivers its own reply: the zero-copy span path hands the stored
      // payload to the transport, which keeps it alive until written.
      HandleFetchOutput(connection, frame, handler_start);
      return;
    case Opcode::kShutdown:
      reply = EncodeEmptyReply();
      break;
    default:
      reply = EncodeErrorReply(Status::InvalidArgument(
          "unknown opcode " + std::to_string(frame.opcode)));
      break;
  }
  execute_micros_->Observe(SteadyNowMicros() - handler_start);
  connection->SendReply(frame.request_id, std::move(reply));
  if (static_cast<Opcode>(frame.opcode) == Opcode::kShutdown) {
    // Ack first (above), act later: Stop() from a pool task would deadlock
    // the pool drain, so shutdown is recorded and surfaced through
    // WaitForShutdownRequest for the owner to act on. In event mode the
    // ack is only *queued* by SendReply, so wait for the flush — the
    // owner's Stop() tears the loop down and would destroy it unsent.
    connection->WaitRepliesFlushed(/*timeout_ms=*/2000);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      shutdown_requested_ = true;
    }
    state_cv_.notify_all();
  }
}

// ------------------------------------------------------------- handlers ---

std::string HelixServer::HandleOpenSession(
    const std::shared_ptr<ClientConn>& connection, const Frame& frame) {
  Result<std::string> name = DecodeOpenSessionRequest(frame.payload);
  if (!name.ok()) {
    return EncodeErrorReply(name.status());
  }
  Result<service::ServiceSession*> session =
      service_->CreateSession(name.value());
  if (!session.ok()) {
    return EncodeErrorReply(session.status());
  }
  {
    std::lock_guard<std::mutex> lock(connection->sessions_mu);
    connection->session_ids.push_back(session.value()->id());
  }
  return EncodeOpenSessionReply(session.value()->id());
}

std::string HelixServer::HandleCloseSession(
    const std::shared_ptr<ClientConn>& connection, const Frame& frame) {
  Result<uint64_t> session_id = DecodeCloseSessionRequest(frame.payload);
  if (!session_id.ok()) {
    return EncodeErrorReply(session_id.status());
  }
  Status closed = service_->CloseSession(session_id.value());
  if (!closed.ok()) {
    return EncodeErrorReply(closed);
  }
  {
    std::lock_guard<std::mutex> lock(connection->sessions_mu);
    for (auto it = connection->session_ids.begin();
         it != connection->session_ids.end(); ++it) {
      if (*it == session_id.value()) {
        connection->session_ids.erase(it);
        break;
      }
    }
  }
  return EncodeEmptyReply();
}

std::string HelixServer::HandleRunIteration(const Frame& frame) {
  Result<RunIterationRequest> request =
      DecodeRunIterationRequest(frame.payload);
  if (!request.ok()) {
    return EncodeErrorReply(request.status());
  }
  // The shared_ptr keeps the session alive across a concurrent
  // CloseSession (its connection dropping mid-iteration).
  std::shared_ptr<service::ServiceSession> session =
      service_->FindSession(request->session_id);
  if (session == nullptr) {
    return EncodeErrorReply(Status::NotFound(
        "no session with id " + std::to_string(request->session_id)));
  }
  Result<core::Workflow> workflow = resolver_(request->spec);
  if (!workflow.ok()) {
    return EncodeErrorReply(
        workflow.status().WithContext("resolving workflow spec"));
  }
  // Already on a pool worker: run the iteration here, exactly like an
  // in-process SubmitIteration task would.
  Result<core::IterationResult> result = service_->RunIteration(
      session.get(), workflow.value(), request->description,
      request->category, &request->spec);
  if (!result.ok()) {
    return EncodeErrorReply(result.status());
  }
  RemoteIterationResult remote;
  remote.version_id = result->version_id;
  remote.num_computed = result->report.num_computed;
  remote.num_loaded = result->report.num_loaded;
  remote.num_shared = result->report.num_shared;
  remote.num_pruned = result->report.num_pruned;
  remote.num_materialized = result->report.num_materialized;
  remote.total_micros = result->report.total_micros;
  for (const auto& [output_name, data] : result->report.outputs) {
    const core::NodeExecution* node = result->report.FindNode(output_name);
    remote.outputs.push_back({output_name, data.Fingerprint(),
                              node != nullptr ? node->signature : 0});
  }
  return EncodeRunIterationReply(remote);
}

std::string HelixServer::HandleGetCounters(const Frame& frame) {
  Result<uint64_t> session_id = DecodeGetCountersRequest(frame.payload);
  if (!session_id.ok()) {
    return EncodeErrorReply(session_id.status());
  }
  if (session_id.value() == 0) {
    return EncodeCountersReply(service_->AggregateCounters());
  }
  std::shared_ptr<service::ServiceSession> session =
      service_->FindSession(session_id.value());
  if (session == nullptr) {
    return EncodeErrorReply(Status::NotFound(
        "no session with id " + std::to_string(session_id.value())));
  }
  return EncodeCountersReply(session->counters());
}

std::string HelixServer::HandleGetMetrics(const Frame& frame) {
  Status empty = DecodeEmptyRequest(frame.payload, "GetMetrics");
  if (!empty.ok()) {
    return EncodeErrorReply(empty);
  }
  // Kernel invocation counts live in lock-free globals (dataflow/simd.h);
  // fold the deltas into the registry so the snapshot carries them.
  dataflow::simd::FoldCountersInto(service_->metrics());
  return EncodeTextReply(service_->metrics()->SnapshotJson());
}

std::string HelixServer::HandleGetTrace(const Frame& frame) {
  Status empty = DecodeEmptyRequest(frame.payload, "GetTrace");
  if (!empty.ok()) {
    return EncodeErrorReply(empty);
  }
  return EncodeTextReply(service_->trace()->ToChromeJson());
}

void HelixServer::HandleFetchOutput(
    const std::shared_ptr<ClientConn>& connection, const Frame& frame,
    int64_t handler_start) {
  Result<uint64_t> signature = DecodeFetchOutputRequest(frame.payload);
  if (!signature.ok()) {
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    connection->SendReply(frame.request_id,
                          EncodeErrorReply(signature.status()));
    return;
  }
  Result<dataflow::DataCollection> data =
      service_->store()->Get(signature.value());
  if (!data.ok()) {
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    connection->SendReply(frame.request_id,
                          EncodeErrorReply(data.status().WithContext(
                              "fetching output with signature " +
                              std::to_string(signature.value()))));
    return;
  }
  if (options_.zero_copy_replies) {
    // The span list borrows the columns' own buffers, so the collection
    // rides along as the pin: the thread path holds it across its
    // synchronous writev, the event path until the queued entry flushes.
    auto owned =
        std::make_shared<dataflow::DataCollection>(std::move(data).value());
    auto spans = std::make_unique<SpanWriter>();
    EncodeFetchOutputReplyToSpans(*owned, spans.get());
    execute_micros_->Observe(SteadyNowMicros() - handler_start);
    connection->SendReplySpans(frame.request_id, std::move(spans),
                               std::move(owned));
    return;
  }
  std::string reply = EncodeFetchOutputReply(data.value());
  execute_micros_->Observe(SteadyNowMicros() - handler_start);
  connection->SendReply(frame.request_id, std::move(reply));
}

// -------------------------------------------------------------- helpers ---

void HelixServer::CloseConnectionSessions(ClientConn* connection) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(connection->sessions_mu);
    ids.swap(connection->session_ids);
  }
  for (uint64_t id : ids) {
    // NotFound means an explicit CloseSession already retired it.
    Status closed = service_->CloseSession(id);
    if (!closed.ok() && !closed.IsNotFound()) {
      HELIX_LOG(Warning) << "closing session " << id
                         << " on disconnect failed: " << closed.ToString();
    }
  }
}

void HelixServer::AccountFrameIn(ClientConn* connection,
                                 size_t payload_bytes) {
  frames_in_total_->Add(1);
  bytes_in_total_->Add(FrameWireBytes(payload_bytes));
  connection->frames_in.fetch_add(1, std::memory_order_relaxed);
  connection->bytes_in.fetch_add(FrameWireBytes(payload_bytes),
                                 std::memory_order_relaxed);
}

void HelixServer::AccountReplyOut(ClientConn* connection,
                                  size_t payload_bytes,
                                  int64_t write_start) {
  reply_write_micros_->Observe(SteadyNowMicros() - write_start);
  frames_out_total_->Add(1);
  bytes_out_total_->Add(FrameWireBytes(payload_bytes));
  connection->frames_out.fetch_add(1, std::memory_order_relaxed);
  connection->bytes_out.fetch_add(FrameWireBytes(payload_bytes),
                                  std::memory_order_relaxed);
}

// ------------------------------------------------------------- shutdown ---

void HelixServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait(lock, [this]() { return shutdown_requested_ || stopped_; });
}

void HelixServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    shutdown_requested_ = true;
  }
  state_cv_.notify_all();

  if (event_loop_ != nullptr) {
    // 1+2. One call: joins the loop threads and tears down every
    // connection — no new frames after it returns. The hangup handlers it
    // fires retire the connections' sessions, which needs the service
    // still alive (it is; teardown is below). The listener closes after,
    // so a racing accept in the loop never touches a closed fd.
    event_loop_->Stop();
    listener_->Close();
  } else {
    // 1. No new connections. The listener may be absent when Start()
    // failed partway and the half-built server is being destroyed.
    if (listener_ != nullptr) {
      listener_->Close();
    }
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    // 2. No new requests: unblock and join every reader. Joining a reader
    //    that already exited on its own (client hung up earlier) is fine.
    std::vector<std::shared_ptr<ThreadConn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
    }
    for (const auto& connection : conns) {
      connection->conn->ShutdownBoth();
    }
    for (const auto& connection : conns) {
      if (connection->reader.joinable()) {
        connection->reader.join();
      }
    }
  }
  // 3. Let in-flight handlers finish (their replies go to already-dead
  //    connections and are dropped; their store effects are durable).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this]() { return outstanding_ == 0; });
  }
  // 4. Tear down the service: drains the pool and the background writer,
  //    then persists the shared stats registry. The pointer is detached
  //    under state_mu_ first so a concurrent service() reads nullptr
  //    rather than a service mid-destruction; the heavy destructor then
  //    runs unlocked.
  std::unique_ptr<service::SessionService> doomed;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    doomed = std::move(service_);
  }
  doomed.reset();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
}

}  // namespace net
}  // namespace helix
