// Request/reply message encodings carried inside frames (net/frame.h).
//
// Workflows cannot cross the wire directly — operators embed arbitrary C++
// UDF closures — so a remote RunIteration carries a WorkflowSpec: a named
// application plus string parameters, resolved *server-side* into a real
// core::Workflow by a WorkflowResolver. Because operator signatures (and
// therefore store keys, plans, and outputs) are pure functions of the
// resolved workflow, a remote iteration is byte-identical to the same
// iteration run in-process — the property tests/net_test.cc pins.
//
// Every reply payload starts with an encoded Status (code + message); a
// result body follows only when the status is OK. The client rebuilds the
// same Status code locally, so remote failures and local failures flow
// through one error channel.
#ifndef HELIX_NET_WIRE_H_
#define HELIX_NET_WIRE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/spans.h"
#include "core/version_manager.h"
#include "dataflow/data_collection.h"
#include "core/workflow.h"
#include "core/workflow_spec.h"
#include "service/session_service.h"

namespace helix {
namespace net {

/// Frame opcodes. Requests are client->server; every server frame is a
/// kReply echoing the request id.
enum class Opcode : uint8_t {
  kOpenSession = 1,
  kRunIteration = 2,
  kGetCounters = 3,
  kShutdown = 4,
  /// Telemetry introspection: the reply body is one JSON text blob
  /// (metrics snapshot / Chrome trace document). Requests carry no
  /// payload.
  kGetMetrics = 5,
  kGetTrace = 6,
  /// Pulls one materialized output payload out of the server's store by
  /// executor signature (learned from a RunIteration reply). The reply
  /// body is a whole DataCollection envelope; on the server's cache-hit
  /// path it is written zero-copy (spans over column bodies + writev).
  kFetchOutput = 7,
  /// Unregisters a server-side session opened by kOpenSession. The
  /// session's counters move into the service's retired aggregate, so
  /// GetCounters(0) keeps reporting its work. The server also closes a
  /// connection's sessions implicitly when the connection drops.
  kCloseSession = 8,
  kReply = 0x80,
};

/// The spec and resolver live in core/workflow_spec.h (the workload layer
/// records and replays specs without touching sockets); re-exported here
/// so wire-level code keeps reading naturally.
using WorkflowSpec = core::WorkflowSpec;
using WorkflowResolver = core::WorkflowResolver;
using core::DecodeWorkflowSpec;
using core::EncodeWorkflowSpec;

/// One workflow output as seen across the wire: name, content
/// fingerprint, and the executor signature keying the server-side store
/// entry — enough for the client to verify determinism and, when it
/// wants the bytes, FetchOutput them by signature.
struct RemoteOutput {
  std::string name;
  uint64_t fingerprint = 0;
  /// Cumulative executor signature of the producing node (0 if the
  /// server could not resolve it); the FetchOutput store key.
  uint64_t signature = 0;
};

/// Counter snapshot and iteration summary returned by a remote iteration.
/// Fingerprints stand in for payloads: outputs stay server-side, the
/// client gets enough to verify determinism and drive the next edit.
struct RemoteIterationResult {
  int64_t version_id = 0;
  int64_t num_computed = 0;
  int64_t num_loaded = 0;
  int64_t num_shared = 0;
  int64_t num_pruned = 0;
  int64_t num_materialized = 0;
  int64_t total_micros = 0;
  /// Per-output (name, fingerprint, signature), in output-name order.
  std::vector<RemoteOutput> outputs;
};

// --- Status ---------------------------------------------------------------

void EncodeStatus(const Status& status, ByteWriter* out);
/// Decodes an encoded status into `*out`. The return value is the
/// *transport* status (Corruption on malformed bytes); `*out` is the
/// decoded application status.
Status DecodeStatus(ByteReader* in, Status* out);

// --- Request payloads -----------------------------------------------------

std::string EncodeOpenSessionRequest(const std::string& name);
Result<std::string> DecodeOpenSessionRequest(std::string_view payload);

std::string EncodeRunIterationRequest(uint64_t session_id,
                                      const WorkflowSpec& spec,
                                      const std::string& description,
                                      core::ChangeCategory category);
struct RunIterationRequest {
  uint64_t session_id = 0;
  WorkflowSpec spec;
  std::string description;
  core::ChangeCategory category = core::ChangeCategory::kInitial;
};
Result<RunIterationRequest> DecodeRunIterationRequest(
    std::string_view payload);

/// session_id 0 asks for the service-wide aggregate.
std::string EncodeGetCountersRequest(uint64_t session_id);
Result<uint64_t> DecodeGetCountersRequest(std::string_view payload);

/// GetMetrics / GetTrace requests are empty; the decoder only rejects
/// stray payload bytes.
Status DecodeEmptyRequest(std::string_view payload, const char* what);

std::string EncodeFetchOutputRequest(uint64_t signature);
Result<uint64_t> DecodeFetchOutputRequest(std::string_view payload);

std::string EncodeCloseSessionRequest(uint64_t session_id);
Result<uint64_t> DecodeCloseSessionRequest(std::string_view payload);

// --- Reply payloads -------------------------------------------------------

/// A failed reply is just the status; a successful one is OK + body.
std::string EncodeErrorReply(const Status& status);
std::string EncodeOpenSessionReply(uint64_t session_id);
std::string EncodeRunIterationReply(const RemoteIterationResult& result);
std::string EncodeCountersReply(const service::SessionCounters& counters);
std::string EncodeEmptyReply();
/// OK status + one opaque text blob (GetMetrics / GetTrace JSON).
std::string EncodeTextReply(const std::string& text);
/// OK status + a whole DataCollection envelope (flattening copy path —
/// the zero-copy server path emits the same bytes through
/// EncodeFetchOutputReplyToSpans instead).
std::string EncodeFetchOutputReply(const dataflow::DataCollection& data);
/// Span-list form of EncodeFetchOutputReply: status into the scratch
/// writer, then the envelope borrowing column bodies from `data`, which
/// must outlive the spans.
void EncodeFetchOutputReplyToSpans(const dataflow::DataCollection& data,
                                   SpanWriter* s);

/// Reply decoders: each decodes the leading status — a non-OK remote
/// status is returned as-is (same code, message prefixed "remote: ") —
/// then the body.
Result<uint64_t> DecodeOpenSessionReply(std::string_view payload);
Result<RemoteIterationResult> DecodeRunIterationReply(
    std::string_view payload);
Result<service::SessionCounters> DecodeCountersReply(
    std::string_view payload);
Status DecodeEmptyReply(std::string_view payload);
Result<std::string> DecodeTextReply(std::string_view payload);
Result<dataflow::DataCollection> DecodeFetchOutputReply(
    std::string_view payload);

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_WIRE_H_
