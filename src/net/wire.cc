#include "net/wire.h"

#include <utility>

#include "common/strings.h"

namespace helix {
namespace net {
namespace {

// Decodes a reply's leading status. A non-OK remote status is surfaced
// as-is (same code, message prefixed for provenance); the caller then
// continues decoding the body from `in`.
Status DecodeReplyStatus(ByteReader* in) {
  Status remote;
  HELIX_RETURN_IF_ERROR(DecodeStatus(in, &remote));
  if (!remote.ok()) {
    return Status(remote.code(), "remote: " + remote.message());
  }
  return Status::OK();
}

}  // namespace

void EncodeStatus(const Status& status, ByteWriter* out) {
  out->PutU8(static_cast<uint8_t>(status.code()));
  out->PutString(status.message());
}

Status DecodeStatus(ByteReader* in, Status* out) {
  HELIX_ASSIGN_OR_RETURN(uint8_t code, in->GetU8());
  HELIX_ASSIGN_OR_RETURN(std::string message, in->GetString());
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  *out = code == 0 ? Status::OK()
                   : Status(static_cast<StatusCode>(code),
                            std::move(message));
  return Status::OK();
}

std::string EncodeOpenSessionRequest(const std::string& name) {
  ByteWriter out;
  out.PutString(name);
  return std::move(out.TakeData());
}

Result<std::string> DecodeOpenSessionRequest(std::string_view payload) {
  ByteReader in(payload);
  HELIX_ASSIGN_OR_RETURN(std::string name, in.GetString());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in OpenSession request");
  }
  return name;
}

std::string EncodeRunIterationRequest(uint64_t session_id,
                                      const WorkflowSpec& spec,
                                      const std::string& description,
                                      core::ChangeCategory category) {
  ByteWriter out;
  out.PutU64(session_id);
  EncodeWorkflowSpec(spec, &out);
  out.PutString(description);
  out.PutU8(static_cast<uint8_t>(category));
  return std::move(out.TakeData());
}

Result<RunIterationRequest> DecodeRunIterationRequest(
    std::string_view payload) {
  ByteReader in(payload);
  RunIterationRequest request;
  HELIX_ASSIGN_OR_RETURN(request.session_id, in.GetU64());
  HELIX_ASSIGN_OR_RETURN(request.spec, DecodeWorkflowSpec(&in));
  HELIX_ASSIGN_OR_RETURN(request.description, in.GetString());
  HELIX_ASSIGN_OR_RETURN(uint8_t category, in.GetU8());
  if (category > static_cast<uint8_t>(core::ChangeCategory::kEvaluation)) {
    return Status::InvalidArgument("unknown change category " +
                                   std::to_string(category));
  }
  request.category = static_cast<core::ChangeCategory>(category);
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in RunIteration request");
  }
  return request;
}

std::string EncodeGetCountersRequest(uint64_t session_id) {
  ByteWriter out;
  out.PutU64(session_id);
  return std::move(out.TakeData());
}

Result<uint64_t> DecodeGetCountersRequest(std::string_view payload) {
  ByteReader in(payload);
  HELIX_ASSIGN_OR_RETURN(uint64_t session_id, in.GetU64());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in GetCounters request");
  }
  return session_id;
}

Status DecodeEmptyRequest(std::string_view payload, const char* what) {
  if (!payload.empty()) {
    return Status::Corruption(StrFormat("unexpected payload bytes in %s "
                                        "request", what));
  }
  return Status::OK();
}

std::string EncodeFetchOutputRequest(uint64_t signature) {
  ByteWriter out;
  out.PutU64(signature);
  return std::move(out.TakeData());
}

Result<uint64_t> DecodeFetchOutputRequest(std::string_view payload) {
  ByteReader in(payload);
  HELIX_ASSIGN_OR_RETURN(uint64_t signature, in.GetU64());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in FetchOutput request");
  }
  return signature;
}

std::string EncodeCloseSessionRequest(uint64_t session_id) {
  ByteWriter out;
  out.PutU64(session_id);
  return std::move(out.TakeData());
}

Result<uint64_t> DecodeCloseSessionRequest(std::string_view payload) {
  ByteReader in(payload);
  HELIX_ASSIGN_OR_RETURN(uint64_t session_id, in.GetU64());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in CloseSession request");
  }
  return session_id;
}

std::string EncodeErrorReply(const Status& status) {
  ByteWriter out;
  EncodeStatus(status, &out);
  return std::move(out.TakeData());
}

std::string EncodeOpenSessionReply(uint64_t session_id) {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  out.PutU64(session_id);
  return std::move(out.TakeData());
}

std::string EncodeRunIterationReply(const RemoteIterationResult& result) {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  out.PutI64(result.version_id);
  out.PutI64(result.num_computed);
  out.PutI64(result.num_loaded);
  out.PutI64(result.num_shared);
  out.PutI64(result.num_pruned);
  out.PutI64(result.num_materialized);
  out.PutI64(result.total_micros);
  out.PutU64(result.outputs.size());
  for (const RemoteOutput& output : result.outputs) {
    out.PutString(output.name);
    out.PutU64(output.fingerprint);
    out.PutU64(output.signature);
  }
  return std::move(out.TakeData());
}

std::string EncodeCountersReply(const service::SessionCounters& counters) {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  out.PutI64(counters.iterations);
  out.PutI64(counters.num_computed);
  out.PutI64(counters.num_loaded);
  out.PutI64(counters.num_shared);
  out.PutI64(counters.cross_session_loads);
  out.PutI64(counters.saved_micros);
  out.PutI64(counters.total_micros);
  return std::move(out.TakeData());
}

std::string EncodeEmptyReply() {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  return std::move(out.TakeData());
}

std::string EncodeTextReply(const std::string& text) {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  out.PutString(text);
  return std::move(out.TakeData());
}

std::string EncodeFetchOutputReply(const dataflow::DataCollection& data) {
  ByteWriter out;
  EncodeStatus(Status::OK(), &out);
  // The envelope rides unprefixed: the frame already bounds the payload,
  // and the envelope's own checksum bounds the body.
  std::string envelope = data.SerializeToString();
  out.PutRaw(envelope.data(), envelope.size());
  return std::move(out.TakeData());
}

void EncodeFetchOutputReplyToSpans(const dataflow::DataCollection& data,
                                   SpanWriter* s) {
  EncodeStatus(Status::OK(), s->writer());
  data.SerializeToSpans(s);
}

Result<uint64_t> DecodeOpenSessionReply(std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  HELIX_ASSIGN_OR_RETURN(uint64_t session_id, in.GetU64());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in OpenSession reply");
  }
  return session_id;
}

Result<RemoteIterationResult> DecodeRunIterationReply(
    std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  RemoteIterationResult result;
  HELIX_ASSIGN_OR_RETURN(result.version_id, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.num_computed, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.num_loaded, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.num_shared, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.num_pruned, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.num_materialized, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(result.total_micros, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(uint64_t n, in.GetU64());
  // Each entry costs at least 24 bytes (length prefix + two u64s); a
  // count claiming more is corrupt, and must be rejected before reserve.
  if (n > in.remaining() / 24) {
    return Status::Corruption("output count implausible");
  }
  result.outputs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RemoteOutput output;
    HELIX_ASSIGN_OR_RETURN(output.name, in.GetString());
    HELIX_ASSIGN_OR_RETURN(output.fingerprint, in.GetU64());
    HELIX_ASSIGN_OR_RETURN(output.signature, in.GetU64());
    result.outputs.push_back(std::move(output));
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in RunIteration reply");
  }
  return result;
}

Result<service::SessionCounters> DecodeCountersReply(
    std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  service::SessionCounters counters;
  HELIX_ASSIGN_OR_RETURN(counters.iterations, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.num_computed, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.num_loaded, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.num_shared, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.cross_session_loads, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.saved_micros, in.GetI64());
  HELIX_ASSIGN_OR_RETURN(counters.total_micros, in.GetI64());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in counters reply");
  }
  return counters;
}

Status DecodeEmptyReply(std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in empty reply");
  }
  return Status::OK();
}

Result<std::string> DecodeTextReply(std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  HELIX_ASSIGN_OR_RETURN(std::string text, in.GetString());
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in text reply");
  }
  return text;
}

Result<dataflow::DataCollection> DecodeFetchOutputReply(
    std::string_view payload) {
  ByteReader in(payload);
  HELIX_RETURN_IF_ERROR(DecodeReplyStatus(&in));
  // Everything after the status is one DataCollection envelope; its own
  // magic/version/checksum validate the bytes.
  return dataflow::DataCollection::DeserializeFromString(
      payload.substr(payload.size() - in.remaining()));
}

}  // namespace net
}  // namespace helix
