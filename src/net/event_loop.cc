#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "net/wire.h"

namespace helix {
namespace net {
namespace {

// epoll_event.data tags for the two non-connection descriptors; real
// connections carry their Conn* (never 0x0/0x1).
void* const kEventFdTag = reinterpret_cast<void*>(0);
void* const kListenerTag = reinterpret_cast<void*>(1);

// One gathered write covers at most this many spans; a reply with more
// simply takes several sendmsg calls.
constexpr size_t kMaxIovPerFlush = 64;

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------- Conn ---

void EventLoop::Conn::SendFrame(const Frame& frame) {
  Outbound entry;
  entry.head = EncodeFrame(frame);
  entry.total = entry.head.size();
  Enqueue(std::move(entry), /*completes_request=*/true);
}

void EventLoop::Conn::SendFrameSpans(uint8_t opcode, uint64_t request_id,
                                     std::unique_ptr<SpanWriter> payload,
                                     std::shared_ptr<const void> pin) {
  Outbound entry;
  BuildFrameParts(opcode, request_id, payload.get(), &entry.head,
                  &entry.trailer);
  entry.total =
      entry.head.size() + payload->TotalBytes() + entry.trailer.size();
  entry.spans = std::move(payload);
  entry.pin = std::move(pin);
  Enqueue(std::move(entry), /*completes_request=*/true);
}

void EventLoop::Conn::Enqueue(Outbound entry, bool completes_request) {
  {
    std::lock_guard<std::mutex> lock(out_mu);
    if (closed) {
      // Torn down: the reply is dropped (entry's pins release here) and
      // teardown already returned this connection's in-flight slots.
      return;
    }
    if (completes_request && inflight > 0) {
      --inflight;
      loop_->global_inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
    queue_bytes += static_cast<int64_t>(entry.total);
    outbound.push_back(std::move(entry));
    if (queue_bytes > loop_->options_.max_outbound_queue_bytes) {
      // Slow reader: the peer is not draining replies. The teardown must
      // run on the owning loop thread; flag it and kick.
      kill_slow = true;
    }
  }
  loop_->Kick(shard_, shared_from_this());
}

bool EventLoop::Conn::WaitOutboundDrained(int timeout_ms) {
  std::unique_lock<std::mutex> lock(out_mu);
  drained_cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [this]() { return closed || outbound.empty(); });
  return outbound.empty();
}

// ----------------------------------------------------------- EventLoop ---

Result<std::unique_ptr<EventLoop>> EventLoop::Start(TcpListener* listener,
                                                    EventLoopOptions options,
                                                    Handlers handlers) {
  if (!handlers.on_frame) {
    return Status::InvalidArgument("EventLoop requires an on_frame handler");
  }
  options.io_threads = std::max(1, options.io_threads);
  std::unique_ptr<EventLoop> loop(
      new EventLoop(options, std::move(handlers)));
  loop->listener_ = listener;
  HELIX_RETURN_IF_ERROR(SetNonBlocking(listener->fd()));
  for (int i = 0; i < options.io_threads; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (shard->epoll_fd < 0) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->event_fd < 0) {
      ::close(shard->epoll_fd);
      shard->epoll_fd = -1;
      return Status::IOError(std::string("eventfd: ") +
                             std::strerror(errno));
    }
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.ptr = kEventFdTag;
    if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev) !=
        0) {
      return Status::IOError(std::string("epoll_ctl(eventfd): ") +
                             std::strerror(errno));
    }
    if (i == 0) {
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.ptr = kListenerTag;
      if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, listener->fd(), &ev) !=
          0) {
        return Status::IOError(std::string("epoll_ctl(listener): ") +
                               std::strerror(errno));
      }
    }
    loop->shards_.push_back(std::move(shard));
  }
  for (int i = 0; i < options.io_threads; ++i) {
    loop->shards_[i]->thread =
        std::thread([raw = loop.get(), i]() { raw->LoopThread(i); });
  }
  return loop;
}

EventLoop::~EventLoop() {
  Stop();
  for (auto& shard : shards_) {
    if (shard->epoll_fd >= 0) {
      ::close(shard->epoll_fd);
    }
    if (shard->event_fd >= 0) {
      ::close(shard->event_fd);
    }
  }
}

int64_t EventLoop::num_connections() const {
  return num_connections_.load(std::memory_order_acquire);
}

void EventLoop::Kick(int shard_index, const std::shared_ptr<Conn>& conn) {
  Shard* shard = shards_[static_cast<size_t>(shard_index)].get();
  {
    std::lock_guard<std::mutex> lock(shard->kick_mu);
    shard->kicks.push_back(conn);
  }
  uint64_t one = 1;
  (void)!::write(shard->event_fd, &one, sizeof(one));
}

void EventLoop::ArmWrite(Shard* shard, Conn* conn, bool on) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
  ev.data.ptr = conn;
  (void)::epoll_ctl(shard->epoll_fd, EPOLL_CTL_MOD, conn->fd_, &ev);
}

void EventLoop::LoopThread(int shard_index) {
  Shard* shard = shards_[static_cast<size_t>(shard_index)].get();
  std::vector<epoll_event> events(128);
  auto sweep_dead = [shard]() {
    for (const auto& doomed : shard->dead) {
      auto it = shard->conns.find(doomed->fd_);
      // Erase only when the entry is still the torn-down connection — a
      // same-batch accept may have reused the descriptor number.
      if (it != shard->conns.end() && it->second.get() == doomed.get()) {
        shard->conns.erase(it);
      }
    }
    shard->dead.clear();
  };
  while (true) {
    int n = ::epoll_wait(shard->epoll_fd, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      HELIX_LOG(Warning) << "epoll_wait failed on shard " << shard_index
                         << ": " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[static_cast<size_t>(i)].data.ptr;
      uint32_t flags = events[static_cast<size_t>(i)].events;
      if (tag == kEventFdTag) {
        uint64_t drained = 0;
        while (::read(shard->event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (tag == kListenerTag) {
        HandleAccept(shard);
        continue;
      }
      Conn* raw = static_cast<Conn*>(tag);
      if (raw->loop_closed) {
        continue;  // torn down earlier in this batch
      }
      auto it = shard->conns.find(raw->fd_);
      if (it == shard->conns.end() || it->second.get() != raw) {
        continue;
      }
      std::shared_ptr<Conn> conn = it->second;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
        Teardown(shard, conn, HangupReason::kPeerReset);
        continue;
      }
      if ((flags & EPOLLIN) != 0) {
        HandleReadable(shard, conn);
      }
      if ((flags & EPOLLOUT) != 0 && !conn->loop_closed) {
        FlushOutbound(shard, conn);
      }
    }
    sweep_dead();
    // Adopt connections handed over by the accepting shard, then service
    // cross-thread kicks (fresh output to flush, slow-reader kills).
    std::vector<std::shared_ptr<Conn>> kicks;
    std::vector<std::shared_ptr<Conn>> incoming;
    {
      std::lock_guard<std::mutex> lock(shard->kick_mu);
      kicks.swap(shard->kicks);
      incoming.swap(shard->incoming);
    }
    for (const auto& conn : incoming) {
      shard->conns[conn->fd_] = conn;
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      (void)::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, conn->fd_, &ev);
    }
    for (const auto& conn : kicks) {
      if (conn->loop_closed) {
        continue;
      }
      bool kill = false;
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        kill = conn->kill_slow;
      }
      if (kill) {
        Teardown(shard, conn, HangupReason::kSlowReader);
      } else {
        FlushOutbound(shard, conn);
      }
    }
    sweep_dead();
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void EventLoop::HandleAccept(Shard* shard) {
  while (true) {
    int fd = ::accept4(listener_->fd(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      // Environmental (EMFILE under fd pressure). Level-triggered epoll
      // will re-report the listener; back off briefly instead of spinning.
      HELIX_LOG(Warning) << "accept failed: " << std::strerror(errno);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    SetNoDelay(fd);
    int target = static_cast<int>(next_shard_.fetch_add(1) % shards_.size());
    std::shared_ptr<Conn> conn(
        new Conn(this, next_conn_id_.fetch_add(1), fd, target));
    num_connections_.fetch_add(1, std::memory_order_acq_rel);
    if (handlers_.on_accept) {
      // Before registration: user state is in place before any frame (or
      // hangup) can be delivered.
      handlers_.on_accept(conn);
    }
    if (shards_[static_cast<size_t>(target)].get() == shard) {
      shard->conns[fd] = conn;
      epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      (void)::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    } else {
      Shard* other = shards_[static_cast<size_t>(target)].get();
      {
        std::lock_guard<std::mutex> lock(other->kick_mu);
        other->incoming.push_back(conn);
      }
      uint64_t one = 1;
      (void)!::write(other->event_fd, &one, sizeof(one));
    }
  }
}

void EventLoop::HandleReadable(Shard* shard,
                               const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  // A few rounds per readiness event: level-triggered epoll re-reports a
  // socket we leave undrained, so capping the rounds keeps one firehose
  // client from starving its shard siblings.
  for (int round = 0; round < 4; ++round) {
    ssize_t n = ::recv(conn->fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->rdbuf.append(buf, static_cast<size_t>(n));
      if (!DrainFrames(shard, conn)) {
        return;  // torn down
      }
      continue;
    }
    if (n == 0) {
      // EOF mid-frame is a torn stream; at a frame boundary it is the
      // orderly end of the connection.
      bool mid_frame = conn->rdbuf.size() > conn->rd_off;
      Teardown(shard, conn,
               mid_frame ? HangupReason::kPeerReset
                         : HangupReason::kPeerClosed);
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    Teardown(shard, conn, HangupReason::kPeerReset);
    return;
  }
}

bool EventLoop::DrainFrames(Shard* shard, const std::shared_ptr<Conn>& conn) {
  while (true) {
    std::string_view pending =
        std::string_view(conn->rdbuf).substr(conn->rd_off);
    Frame frame;
    uint64_t request_id = 0;
    int64_t decode_start = SteadyNowMicros();
    Result<size_t> consumed = DecodeFrameFromBuffer(
        pending, options_.max_payload_bytes, &frame, &request_id);
    if (!consumed.ok()) {
      // Same policy as the blocking reader: best-effort error reply
      // addressed to the parsed request id, then drop the stream — after
      // a framing error there is no trustworthy next-frame boundary.
      Frame error;
      error.opcode = static_cast<uint8_t>(Opcode::kReply);
      error.request_id = request_id;
      error.payload = EncodeErrorReply(consumed.status());
      Conn::Outbound entry;
      entry.head = EncodeFrame(error);
      entry.total = entry.head.size();
      conn->Enqueue(std::move(entry), /*completes_request=*/false);
      if (FlushOutbound(shard, conn)) {
        Teardown(shard, conn, HangupReason::kProtocolError);
      }
      return false;
    }
    if (consumed.value() == 0) {
      return true;  // need more bytes
    }
    int64_t decode_micros = SteadyNowMicros() - decode_start;
    conn->rd_off += consumed.value();
    if (conn->rd_off == conn->rdbuf.size()) {
      conn->rdbuf.clear();
      conn->rd_off = 0;
    } else if (conn->rd_off > (1u << 20)) {
      conn->rdbuf.erase(0, conn->rd_off);
      conn->rd_off = 0;
    }
    // Backpressure: shed the request with ResourceExhausted when either
    // in-flight bound is hit. The connection stays up — shedding is an
    // answer, not a punishment.
    bool shed;
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      shed = conn->inflight >= options_.max_inflight_per_connection;
    }
    if (!shed && global_inflight_.load(std::memory_order_relaxed) >=
                     options_.max_inflight_total) {
      shed = true;
    }
    if (shed) {
      Conn::Outbound entry;
      Frame error;
      error.opcode = static_cast<uint8_t>(Opcode::kReply);
      error.request_id = frame.request_id;
      error.payload = EncodeErrorReply(Status::ResourceExhausted(
          "server overloaded: in-flight request limit reached"));
      entry.head = EncodeFrame(error);
      entry.total = entry.head.size();
      conn->Enqueue(std::move(entry), /*completes_request=*/false);
      if (handlers_.on_shed) {
        handlers_.on_shed(conn);
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      ++conn->inflight;
    }
    global_inflight_.fetch_add(1, std::memory_order_relaxed);
    handlers_.on_frame(conn, std::move(frame), decode_micros);
  }
}

namespace {

// Appends the unsent remainder of one outbound entry as iovecs, up to
// `cap` entries total in `*iov`.
void AppendEntryIovecs(const std::string& head, SpanWriter* spans,
                       const std::string& trailer, size_t offset,
                       std::vector<struct iovec>* iov, size_t cap) {
  size_t skip = offset;
  auto add = [&](const char* data, size_t len) {
    if (iov->size() >= cap || len == 0) {
      return;
    }
    if (skip >= len) {
      skip -= len;
      return;
    }
    iov->push_back(
        {const_cast<char*>(data) + skip, len - skip});
    skip = 0;
  };
  add(head.data(), head.size());
  if (spans != nullptr) {
    for (const ByteSpan& s : spans->spans()) {
      if (iov->size() >= cap) {
        return;
      }
      add(s.data, s.len);
    }
  }
  add(trailer.data(), trailer.size());
}

}  // namespace

bool EventLoop::FlushOutbound(Shard* shard,
                              const std::shared_ptr<Conn>& conn) {
  if (conn->loop_closed) {
    return false;
  }
  std::unique_lock<std::mutex> lock(conn->out_mu);
  if (conn->kill_slow) {
    lock.unlock();
    Teardown(shard, conn, HangupReason::kSlowReader);
    return false;
  }
  while (!conn->outbound.empty()) {
    std::vector<struct iovec> iov;
    iov.reserve(kMaxIovPerFlush);
    for (const Conn::Outbound& entry : conn->outbound) {
      AppendEntryIovecs(entry.head, entry.spans.get(), entry.trailer,
                        entry.offset, &iov, kMaxIovPerFlush);
      if (iov.size() >= kMaxIovPerFlush) {
        break;
      }
    }
    msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = iov.data();
    msg.msg_iovlen = iov.size();
    ssize_t n = ::sendmsg(conn->fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->write_armed) {
          conn->write_armed = true;
          ArmWrite(shard, conn.get(), true);
        }
        return true;
      }
      lock.unlock();
      Teardown(shard, conn, HangupReason::kPeerReset);
      return false;
    }
    size_t sent = static_cast<size_t>(n);
    while (sent > 0 && !conn->outbound.empty()) {
      Conn::Outbound& front = conn->outbound.front();
      size_t step = std::min(front.total - front.offset, sent);
      front.offset += step;
      sent -= step;
      if (front.offset == front.total) {
        conn->queue_bytes -= static_cast<int64_t>(front.total);
        conn->outbound.pop_front();  // releases the entry's pins
      }
    }
  }
  if (conn->write_armed) {
    conn->write_armed = false;
    ArmWrite(shard, conn.get(), false);
  }
  conn->drained_cv.notify_all();
  return true;
}

void EventLoop::Teardown(Shard* shard, const std::shared_ptr<Conn>& conn,
                         HangupReason reason) {
  if (conn->loop_closed) {
    return;
  }
  conn->loop_closed = true;
  int released = 0;
  std::deque<Conn::Outbound> doomed;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    released = conn->inflight;
    conn->inflight = 0;
    doomed.swap(conn->outbound);
    conn->queue_bytes = 0;
    conn->drained_cv.notify_all();
  }
  if (released > 0) {
    global_inflight_.fetch_sub(released, std::memory_order_relaxed);
  }
  (void)::epoll_ctl(shard->epoll_fd, EPOLL_CTL_DEL, conn->fd_, nullptr);
  ::close(conn->fd_);
  shard->dead.push_back(conn);
  num_connections_.fetch_sub(1, std::memory_order_acq_rel);
  doomed.clear();  // releases queued replies' span pins
  if (handlers_.on_hangup) {
    handlers_.on_hangup(conn, reason);
  }
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    uint64_t one = 1;
    (void)!::write(shard->event_fd, &one, sizeof(one));
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  // Loop threads are gone: tear down every remaining connection on this
  // thread (handlers may still need the server's service — the caller
  // sequences Stop() before destroying it).
  for (auto& shard : shards_) {
    std::vector<std::shared_ptr<Conn>> incoming;
    {
      std::lock_guard<std::mutex> lock(shard->kick_mu);
      incoming.swap(shard->incoming);
      shard->kicks.clear();
    }
    for (const auto& conn : incoming) {
      shard->conns[conn->fd_] = conn;
    }
    std::vector<std::shared_ptr<Conn>> doomed;
    doomed.reserve(shard->conns.size());
    for (const auto& [fd, conn] : shard->conns) {
      doomed.push_back(conn);
    }
    for (const auto& conn : doomed) {
      Teardown(shard.get(), conn, HangupReason::kServerStop);
    }
    shard->conns.clear();
    shard->dead.clear();
  }
}

}  // namespace net
}  // namespace helix
