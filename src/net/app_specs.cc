#include "net/app_specs.h"

#include <utility>

namespace helix {
namespace net {
namespace {

void PutLearner(const core::ops::LearnerConfig& learner, WorkflowSpec* spec) {
  spec->SetString("learner.model_type", learner.model_type);
  spec->SetDouble("learner.reg_param", learner.reg_param);
  spec->SetDouble("learner.learning_rate", learner.learning_rate);
  spec->SetInt("learner.epochs", learner.epochs);
  spec->SetInt("learner.seed", static_cast<int64_t>(learner.seed));
}

Status GetLearner(const WorkflowSpec& spec, core::ops::LearnerConfig* out) {
  out->model_type = spec.GetString("learner.model_type", out->model_type);
  HELIX_ASSIGN_OR_RETURN(out->reg_param,
                         spec.GetDouble("learner.reg_param", out->reg_param));
  HELIX_ASSIGN_OR_RETURN(
      out->learning_rate,
      spec.GetDouble("learner.learning_rate", out->learning_rate));
  HELIX_ASSIGN_OR_RETURN(int64_t epochs,
                         spec.GetInt("learner.epochs", out->epochs));
  out->epochs = static_cast<int>(epochs);
  HELIX_ASSIGN_OR_RETURN(
      int64_t seed,
      spec.GetInt("learner.seed", static_cast<int64_t>(out->seed)));
  out->seed = static_cast<uint64_t>(seed);
  return Status::OK();
}

}  // namespace

WorkflowSpec MakeCensusSpec(const apps::CensusConfig& config) {
  WorkflowSpec spec;
  spec.app = kCensusApp;
  spec.SetString("train_path", config.train_path);
  spec.SetString("test_path", config.test_path);
  spec.SetBool("use_edu", config.use_edu);
  spec.SetBool("use_occ", config.use_occ);
  spec.SetBool("use_age_bucket", config.use_age_bucket);
  spec.SetBool("use_edu_x_occ", config.use_edu_x_occ);
  spec.SetBool("use_capital_loss", config.use_capital_loss);
  spec.SetBool("use_marital_status", config.use_marital_status);
  spec.SetBool("use_race", config.use_race);
  spec.SetBool("use_hours", config.use_hours);
  spec.SetBool("use_sex", config.use_sex);
  spec.SetInt("age_bins", config.age_bins);
  PutLearner(config.learner, &spec);
  spec.SetDouble("eval.threshold", config.eval.threshold);
  spec.SetBool("eval.accuracy", config.eval.accuracy);
  spec.SetBool("eval.precision_recall_f1", config.eval.precision_recall_f1);
  spec.SetBool("eval.auc", config.eval.auc);
  spec.SetBool("eval.log_loss", config.eval.log_loss);
  spec.SetBool("eval.confusion_counts", config.eval.confusion_counts);
  return spec;
}

Result<apps::CensusConfig> CensusConfigFromSpec(const WorkflowSpec& spec) {
  if (spec.app != kCensusApp) {
    return Status::InvalidArgument("spec is for app '" + spec.app +
                                   "', not census");
  }
  apps::CensusConfig config;
  config.train_path = spec.GetString("train_path", config.train_path);
  config.test_path = spec.GetString("test_path", config.test_path);
  HELIX_ASSIGN_OR_RETURN(config.use_edu,
                         spec.GetBool("use_edu", config.use_edu));
  HELIX_ASSIGN_OR_RETURN(config.use_occ,
                         spec.GetBool("use_occ", config.use_occ));
  HELIX_ASSIGN_OR_RETURN(
      config.use_age_bucket,
      spec.GetBool("use_age_bucket", config.use_age_bucket));
  HELIX_ASSIGN_OR_RETURN(
      config.use_edu_x_occ,
      spec.GetBool("use_edu_x_occ", config.use_edu_x_occ));
  HELIX_ASSIGN_OR_RETURN(
      config.use_capital_loss,
      spec.GetBool("use_capital_loss", config.use_capital_loss));
  HELIX_ASSIGN_OR_RETURN(
      config.use_marital_status,
      spec.GetBool("use_marital_status", config.use_marital_status));
  HELIX_ASSIGN_OR_RETURN(config.use_race,
                         spec.GetBool("use_race", config.use_race));
  HELIX_ASSIGN_OR_RETURN(config.use_hours,
                         spec.GetBool("use_hours", config.use_hours));
  HELIX_ASSIGN_OR_RETURN(config.use_sex,
                         spec.GetBool("use_sex", config.use_sex));
  HELIX_ASSIGN_OR_RETURN(int64_t age_bins,
                         spec.GetInt("age_bins", config.age_bins));
  config.age_bins = static_cast<int>(age_bins);
  HELIX_RETURN_IF_ERROR(GetLearner(spec, &config.learner));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.threshold,
      spec.GetDouble("eval.threshold", config.eval.threshold));
  HELIX_ASSIGN_OR_RETURN(config.eval.accuracy,
                         spec.GetBool("eval.accuracy", config.eval.accuracy));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.precision_recall_f1,
      spec.GetBool("eval.precision_recall_f1",
                   config.eval.precision_recall_f1));
  HELIX_ASSIGN_OR_RETURN(config.eval.auc,
                         spec.GetBool("eval.auc", config.eval.auc));
  HELIX_ASSIGN_OR_RETURN(config.eval.log_loss,
                         spec.GetBool("eval.log_loss", config.eval.log_loss));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.confusion_counts,
      spec.GetBool("eval.confusion_counts", config.eval.confusion_counts));
  return config;
}

WorkflowSpec MakeIeSpec(const apps::IeConfig& config) {
  WorkflowSpec spec;
  spec.app = kIeApp;
  spec.SetString("corpus_path", config.corpus_path);
  spec.SetDouble("train_frac", config.train_frac);
  spec.SetBool("features.word_identity", config.features.word_identity);
  spec.SetBool("features.shape", config.features.shape);
  spec.SetBool("features.prefix_suffix", config.features.prefix_suffix);
  spec.SetBool("features.gazetteer", config.features.gazetteer);
  spec.SetBool("features.context", config.features.context);
  spec.SetInt("features.context_window", config.features.context_window);
  spec.SetBool("features.honorific", config.features.honorific);
  spec.SetBool("features.position", config.features.position);
  PutLearner(config.learner, &spec);
  spec.SetDouble("decoder.threshold", config.decoder.threshold);
  spec.SetString("decoder.label", config.decoder.label);
  spec.SetInt("decoder.min_tokens", config.decoder.min_tokens);
  spec.SetInt("decoder.max_tokens", config.decoder.max_tokens);
  return spec;
}

Result<apps::IeConfig> IeConfigFromSpec(const WorkflowSpec& spec) {
  if (spec.app != kIeApp) {
    return Status::InvalidArgument("spec is for app '" + spec.app +
                                   "', not ie");
  }
  apps::IeConfig config;
  config.corpus_path = spec.GetString("corpus_path", config.corpus_path);
  HELIX_ASSIGN_OR_RETURN(config.train_frac,
                         spec.GetDouble("train_frac", config.train_frac));
  HELIX_ASSIGN_OR_RETURN(
      config.features.word_identity,
      spec.GetBool("features.word_identity", config.features.word_identity));
  HELIX_ASSIGN_OR_RETURN(config.features.shape,
                         spec.GetBool("features.shape",
                                      config.features.shape));
  HELIX_ASSIGN_OR_RETURN(
      config.features.prefix_suffix,
      spec.GetBool("features.prefix_suffix", config.features.prefix_suffix));
  HELIX_ASSIGN_OR_RETURN(
      config.features.gazetteer,
      spec.GetBool("features.gazetteer", config.features.gazetteer));
  HELIX_ASSIGN_OR_RETURN(
      config.features.context,
      spec.GetBool("features.context", config.features.context));
  HELIX_ASSIGN_OR_RETURN(
      int64_t window,
      spec.GetInt("features.context_window",
                  config.features.context_window));
  config.features.context_window = static_cast<int>(window);
  HELIX_ASSIGN_OR_RETURN(
      config.features.honorific,
      spec.GetBool("features.honorific", config.features.honorific));
  HELIX_ASSIGN_OR_RETURN(
      config.features.position,
      spec.GetBool("features.position", config.features.position));
  HELIX_RETURN_IF_ERROR(GetLearner(spec, &config.learner));
  HELIX_ASSIGN_OR_RETURN(
      config.decoder.threshold,
      spec.GetDouble("decoder.threshold", config.decoder.threshold));
  config.decoder.label = spec.GetString("decoder.label",
                                        config.decoder.label);
  HELIX_ASSIGN_OR_RETURN(
      int64_t min_tokens,
      spec.GetInt("decoder.min_tokens", config.decoder.min_tokens));
  config.decoder.min_tokens = static_cast<int>(min_tokens);
  HELIX_ASSIGN_OR_RETURN(
      int64_t max_tokens,
      spec.GetInt("decoder.max_tokens", config.decoder.max_tokens));
  config.decoder.max_tokens = static_cast<int>(max_tokens);
  return config;
}

WorkflowSpec MakeStreamSpec(const apps::StreamConfig& config) {
  WorkflowSpec spec;
  spec.app = kStreamApp;
  spec.SetString("base_train_path", config.base_train_path);
  spec.SetString("holdout_path", config.holdout_path);
  spec.SetString("stream_path", config.stream_path);
  spec.SetInt("age_bins", config.age_bins);
  PutLearner(config.learner, &spec);
  spec.SetDouble("eval.threshold", config.eval.threshold);
  spec.SetBool("eval.accuracy", config.eval.accuracy);
  spec.SetBool("eval.precision_recall_f1", config.eval.precision_recall_f1);
  spec.SetBool("eval.auc", config.eval.auc);
  spec.SetBool("eval.log_loss", config.eval.log_loss);
  spec.SetBool("eval.confusion_counts", config.eval.confusion_counts);
  return spec;
}

Result<apps::StreamConfig> StreamConfigFromSpec(const WorkflowSpec& spec) {
  if (spec.app != kStreamApp) {
    return Status::InvalidArgument("spec is for app '" + spec.app +
                                   "', not stream");
  }
  apps::StreamConfig config;
  config.base_train_path =
      spec.GetString("base_train_path", config.base_train_path);
  config.holdout_path = spec.GetString("holdout_path", config.holdout_path);
  config.stream_path = spec.GetString("stream_path", config.stream_path);
  HELIX_ASSIGN_OR_RETURN(int64_t age_bins,
                         spec.GetInt("age_bins", config.age_bins));
  config.age_bins = static_cast<int>(age_bins);
  HELIX_RETURN_IF_ERROR(GetLearner(spec, &config.learner));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.threshold,
      spec.GetDouble("eval.threshold", config.eval.threshold));
  HELIX_ASSIGN_OR_RETURN(config.eval.accuracy,
                         spec.GetBool("eval.accuracy", config.eval.accuracy));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.precision_recall_f1,
      spec.GetBool("eval.precision_recall_f1",
                   config.eval.precision_recall_f1));
  HELIX_ASSIGN_OR_RETURN(config.eval.auc,
                         spec.GetBool("eval.auc", config.eval.auc));
  HELIX_ASSIGN_OR_RETURN(config.eval.log_loss,
                         spec.GetBool("eval.log_loss", config.eval.log_loss));
  HELIX_ASSIGN_OR_RETURN(
      config.eval.confusion_counts,
      spec.GetBool("eval.confusion_counts", config.eval.confusion_counts));
  return config;
}

WorkflowResolver MakeStandardResolver() {
  return [](const WorkflowSpec& spec) -> Result<core::Workflow> {
    if (spec.app == kCensusApp) {
      HELIX_ASSIGN_OR_RETURN(apps::CensusConfig config,
                             CensusConfigFromSpec(spec));
      return apps::BuildCensusWorkflow(config);
    }
    if (spec.app == kIeApp) {
      HELIX_ASSIGN_OR_RETURN(apps::IeConfig config, IeConfigFromSpec(spec));
      return apps::BuildIeWorkflow(config);
    }
    if (spec.app == kStreamApp) {
      HELIX_ASSIGN_OR_RETURN(apps::StreamConfig config,
                             StreamConfigFromSpec(spec));
      return apps::BuildStreamWorkflow(config);
    }
    return Status::NotFound("no workflow resolver for app '" + spec.app +
                            "'");
  };
}

}  // namespace net
}  // namespace helix
