// EventLoop: a small fixed set of epoll-driven I/O threads multiplexing
// every client connection of a HelixServer.
//
// The thread-per-connection reader model spends one blocked OS thread per
// client — fine for dozens, fatal for the paper's "millions of users"
// framing. This loop serves the same framing protocol with `io_threads`
// threads total, each owning one epoll instance (a shard) and a disjoint
// subset of the connections:
//
//   * the listener is watched by shard 0; accepted sockets are made
//     nonblocking and handed to shards round-robin;
//   * readable sockets are drained into a per-connection buffer and frames
//     are decoded incrementally (DecodeFrameFromBuffer) — a frame spread
//     across many TCP segments costs readiness wakeups, never a blocked
//     thread;
//   * writes go through a per-connection outbound queue flushed by the
//     owning loop thread (gathered sendmsg); EPOLLOUT is armed only while
//     the queue is nonempty. A queued reply may carry borrowed spans (the
//     zero-copy FetchOutput path): the entry pins the SpanWriter and the
//     DataCollection behind it until the bytes are on the wire.
//
// Backpressure is first-class policy, not an accident of blocking I/O:
//
//   * bounded in-flight requests, per connection and loop-wide — a frame
//     past either limit is answered immediately with a ResourceExhausted
//     error reply (load shedding) instead of ballooning the pool queue;
//     the connection survives and the client may retry;
//   * a bounded outbound-queue byte budget per connection — a peer that
//     stops reading has its connection torn down when queued replies
//     exceed the budget (the slow-reader defense; replaces the blunt
//     30s SO_SNDTIMEO of the blocking write path).
//
// Threading: handlers (on_accept, on_frame, on_shed) run on the loop
// thread owning the connection; on_hangup runs there too, or on the
// Stop() caller during teardown — exactly once per connection either way.
// Conn::SendFrame / SendFrameSpans are safe from any thread (the pool
// workers answering requests); delivery is ordered per connection by the
// queue. Stop() joins the loop threads and tears down every connection
// (firing on_hangup) before returning, so handlers never outlive the
// structures they capture.
#ifndef HELIX_NET_EVENT_LOOP_H_
#define HELIX_NET_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/spans.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace helix {
namespace net {

struct EventLoopOptions {
  /// Epoll shards (and threads). 2 is enough to saturate loopback; the
  /// point is that this does NOT grow with the connection count.
  int io_threads = 2;
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// In-flight request limits (dispatched, reply not yet queued). Past
  /// either bound a request is shed with ResourceExhausted.
  int max_inflight_per_connection = 64;
  int64_t max_inflight_total = 1024;
  /// Slow-reader defense: tear the connection down when its queued
  /// outbound bytes exceed this.
  int64_t max_outbound_queue_bytes = 64ll << 20;
};

/// Why a connection ended; on_hangup receives it.
enum class HangupReason {
  kPeerClosed,     // clean EOF at a frame boundary
  kPeerReset,      // read/write error: EPIPE, ECONNRESET, torn stream
  kSlowReader,     // outbound queue exceeded its byte budget
  kProtocolError,  // malformed frame (best-effort error reply was queued)
  kServerStop,     // EventLoop::Stop tore the connection down
};

class EventLoop {
 public:
  /// One connection owned by the loop. Exposed to the server as a handle:
  /// user state, reply submission, and drain waiting. Everything else is
  /// loop-internal.
  class Conn : public std::enable_shared_from_this<Conn> {
   public:
    /// Opaque per-connection server state, set in on_accept before any
    /// frame is delivered and never reassigned after.
    std::shared_ptr<void> user;

    uint64_t id() const { return id_; }

    /// Queues one flat reply frame (EncodeFrame of `frame`) for delivery
    /// and marks one in-flight request complete. Thread-safe; silently a
    /// no-op once the connection is torn down.
    void SendFrame(const Frame& frame);

    /// Queues one span-list reply frame (wire bytes identical to
    /// WriteFrameSpans). The entry owns `payload` and holds `pin` until
    /// flushed — the borrowed spans' backing memory must be owned by the
    /// two. Marks one in-flight request complete.
    void SendFrameSpans(uint8_t opcode, uint64_t request_id,
                        std::unique_ptr<SpanWriter> payload,
                        std::shared_ptr<const void> pin);

    /// Blocks until every queued outbound byte reached the kernel (or the
    /// connection died, or the timeout passed); true when drained. The
    /// shutdown handler uses this so the Shutdown ack cannot be destroyed
    /// with the loop before it flushes.
    bool WaitOutboundDrained(int timeout_ms);

   private:
    friend class EventLoop;

    /// One queued outbound message: either a flat frame in `head`, or a
    /// deferred gathered write (`head` = frame header, the SpanWriter's
    /// span list, `trailer` = checksum) pinning its backing storage.
    struct Outbound {
      std::string head;
      std::unique_ptr<SpanWriter> spans;
      std::string trailer;
      std::shared_ptr<const void> pin;
      size_t total = 0;   // head + span payload + trailer bytes
      size_t offset = 0;  // bytes already on the wire
    };

    Conn(EventLoop* loop, uint64_t id, int fd, int shard)
        : loop_(loop), id_(id), fd_(fd), shard_(shard) {}

    void Enqueue(Outbound entry, bool completes_request);

    EventLoop* const loop_;
    const uint64_t id_;
    int fd_;
    const int shard_;

    // --- loop-thread-only state ---
    std::string rdbuf;
    size_t rd_off = 0;
    /// Set by teardown; a stale epoll event for this conn is skipped.
    bool loop_closed = false;

    // --- shared state, guarded by out_mu ---
    std::mutex out_mu;
    std::deque<Outbound> outbound;
    int64_t queue_bytes = 0;
    int inflight = 0;
    bool closed = false;        // torn down: drop further sends
    bool write_armed = false;   // EPOLLOUT currently requested
    bool kill_slow = false;     // budget exceeded; loop thread tears down
    std::condition_variable drained_cv;
  };

  using AcceptHandler = std::function<void(const std::shared_ptr<Conn>&)>;
  /// `decode_micros` is the time DecodeFrameFromBuffer spent on this
  /// frame (parse + checksum; the wire wait is readiness, not time on a
  /// thread).
  using FrameHandler = std::function<void(const std::shared_ptr<Conn>&,
                                          Frame&&, int64_t decode_micros)>;
  using ShedHandler = std::function<void(const std::shared_ptr<Conn>&)>;
  using HangupHandler =
      std::function<void(const std::shared_ptr<Conn>&, HangupReason)>;

  struct Handlers {
    AcceptHandler on_accept;
    FrameHandler on_frame;
    ShedHandler on_shed;
    HangupHandler on_hangup;
  };

  /// Starts the loop over `listener` (borrowed; must outlive the loop;
  /// the caller must not Accept() on it concurrently). on_frame is
  /// required; the rest may be empty.
  static Result<std::unique_ptr<EventLoop>> Start(TcpListener* listener,
                                                  EventLoopOptions options,
                                                  Handlers handlers);

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Joins the loop threads and tears down every connection, firing
  /// on_hangup(kServerStop) for each. Idempotent.
  void Stop();

  /// Live connection count (for tests).
  int64_t num_connections() const;

 private:
  struct Shard {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    /// Owned connections; loop thread only (and Stop after join).
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    /// Connections torn down during the current event batch, erased from
    /// `conns` afterwards (stale epoll events are skipped meanwhile).
    std::vector<std::shared_ptr<Conn>> dead;
    std::mutex kick_mu;
    /// Connections with freshly queued output (flush) or a pending kill,
    /// plus newly accepted connections to adopt.
    std::vector<std::shared_ptr<Conn>> kicks;
    std::vector<std::shared_ptr<Conn>> incoming;
  };

  EventLoop(EventLoopOptions options, Handlers handlers)
      : options_(options), handlers_(std::move(handlers)) {}

  void LoopThread(int shard_index);
  void HandleAccept(Shard* shard);
  void HandleReadable(Shard* shard, const std::shared_ptr<Conn>& conn);
  /// Decodes and dispatches every complete frame in conn->rdbuf.
  /// False if the connection was torn down.
  bool DrainFrames(Shard* shard, const std::shared_ptr<Conn>& conn);
  /// Flushes the outbound queue with gathered nonblocking writes; arms /
  /// disarms EPOLLOUT. False if the connection was torn down.
  bool FlushOutbound(Shard* shard, const std::shared_ptr<Conn>& conn);
  void Teardown(Shard* shard, const std::shared_ptr<Conn>& conn,
                HangupReason reason);
  void Kick(int shard_index, const std::shared_ptr<Conn>& conn);
  void ArmWrite(Shard* shard, Conn* conn, bool on);

  const EventLoopOptions options_;
  const Handlers handlers_;
  TcpListener* listener_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_shard_{0};
  std::atomic<int64_t> global_inflight_{0};
  std::atomic<int64_t> num_connections_{0};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_EVENT_LOOP_H_
