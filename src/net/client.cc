#include "net/client.h"

#include <future>
#include <utility>
#include <vector>

namespace helix {
namespace net {

Result<std::unique_ptr<HelixClient>> HelixClient::Connect(
    const std::string& host, int port, uint32_t max_payload_bytes) {
  HELIX_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> conn,
                         net::Connect(host, port));
  std::unique_ptr<HelixClient> client(
      new HelixClient(std::move(conn), max_payload_bytes));
  client->receiver_ = std::thread(
      [c = client.get(), handle = client->conn_]() {
        c->ReceiverLoop(handle);
      });
  return client;
}

HelixClient::~HelixClient() {
  Close();
  if (receiver_.joinable()) {
    receiver_.join();
  }
}

void HelixClient::CallAsync(Opcode opcode, std::string payload,
                            ReplyCallback done) {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conn = conn_;
  }
  if (conn == nullptr) {
    done(Status::IOError("client is closed"));
    return;
  }
  Frame request;
  request.opcode = static_cast<uint8_t>(opcode);
  request.request_id = next_request_id_.fetch_add(1);
  request.payload = std::move(payload);
  Status poisoned = Status::OK();
  {
    // Register before sending: a reply can arrive (and the receiver look
    // it up) before the send call even returns. The sticky-error check
    // happens under the same lock as the insert, so a call can never slip
    // in after FailAllPending swept the table — it would hang forever
    // with no receiver left to answer it.
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (transport_error_.ok()) {
      pending_[request.request_id] = std::move(done);
    } else {
      poisoned = transport_error_;
    }
  }
  if (!poisoned.ok()) {
    done(poisoned);
    return;
  }
  Status sent;
  {
    std::lock_guard<std::mutex> send_lock(send_mu_);
    sent = WriteFrame(conn.get(), request);
  }
  if (!sent.ok()) {
    // This call's bytes may be partially on the wire: the stream position
    // is no longer trustworthy for anyone, so poison the connection. The
    // receiver (unblocked by the shutdown) fails the other pending calls;
    // this one is failed here — exactly once, whichever side erases it
    // from the table first.
    DropConnection(conn);
    ReplyCallback mine;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(request.request_id);
      if (it != pending_.end()) {
        mine = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (mine) {
      mine(sent);
    }
  }
}

void HelixClient::ReceiverLoop(std::shared_ptr<TcpConnection> conn) {
  while (true) {
    Result<Frame> reply = ReadFrame(conn.get(), max_payload_bytes_);
    Status failure = Status::OK();
    if (!reply.ok()) {
      // A clean server-side close surfaces as NotFound from ReadFrame;
      // for a client with calls in flight it is still a failure of those
      // calls.
      failure = reply.status().IsNotFound()
                    ? Status::IOError("connection closed by server")
                    : reply.status();
    } else if (reply->opcode != static_cast<uint8_t>(Opcode::kReply)) {
      failure = Status::Corruption(
          "server sent a non-reply frame (opcode " +
          std::to_string(reply->opcode) + ")");
    }
    if (failure.ok()) {
      ReplyCallback done;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        auto it = pending_.find(reply->request_id);
        if (it != pending_.end()) {
          done = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (done) {
        done(std::move(reply->payload));
        continue;
      }
      // A reply that matches no pending call means the stream is out of
      // step (e.g. the server answered a request id it salvaged from a
      // frame it could not fully parse); nothing after it can be trusted.
      failure = Status::Corruption(
          "reply id " + std::to_string(reply->request_id) +
          " matches no pending request");
    }
    DropConnection(conn);
    FailAllPending(failure);
    return;
  }
}

void HelixClient::FailAllPending(const Status& status) {
  std::vector<ReplyCallback> doomed;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (transport_error_.ok()) {
      transport_error_ = status;
    }
    doomed.reserve(pending_.size());
    for (auto& [id, done] : pending_) {
      doomed.push_back(std::move(done));
    }
    pending_.clear();
  }
  for (ReplyCallback& done : doomed) {
    done(status);
  }
}

Result<std::string> HelixClient::Call(Opcode opcode, std::string payload) {
  auto promised = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> reply = promised->get_future();
  CallAsync(opcode, std::move(payload),
            [promised](Result<std::string> result) {
              promised->set_value(std::move(result));
            });
  return reply.get();
}

Result<uint64_t> HelixClient::OpenSession(const std::string& name) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kOpenSession, EncodeOpenSessionRequest(name)));
  return DecodeOpenSessionReply(reply);
}

Status HelixClient::CloseSession(uint64_t session_id) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kCloseSession, EncodeCloseSessionRequest(session_id)));
  return DecodeEmptyReply(reply);
}

Result<RemoteIterationResult> HelixClient::RunIteration(
    uint64_t session_id, const WorkflowSpec& spec,
    const std::string& description, core::ChangeCategory category) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kRunIteration,
           EncodeRunIterationRequest(session_id, spec, description,
                                     category)));
  return DecodeRunIterationReply(reply);
}

Result<service::SessionCounters> HelixClient::GetCounters(
    uint64_t session_id) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kGetCounters, EncodeGetCountersRequest(session_id)));
  return DecodeCountersReply(reply);
}

Result<dataflow::DataCollection> HelixClient::FetchOutput(
    uint64_t signature) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kFetchOutput, EncodeFetchOutputRequest(signature)));
  return DecodeFetchOutputReply(reply);
}

void HelixClient::RunIterationAsync(
    uint64_t session_id, const WorkflowSpec& spec,
    const std::string& description, core::ChangeCategory category,
    std::function<void(Result<RemoteIterationResult>)> done) {
  CallAsync(Opcode::kRunIteration,
            EncodeRunIterationRequest(session_id, spec, description,
                                      category),
            [done = std::move(done)](Result<std::string> reply) {
              if (!reply.ok()) {
                done(reply.status());
                return;
              }
              done(DecodeRunIterationReply(reply.value()));
            });
}

void HelixClient::GetCountersAsync(
    uint64_t session_id,
    std::function<void(Result<service::SessionCounters>)> done) {
  CallAsync(Opcode::kGetCounters, EncodeGetCountersRequest(session_id),
            [done = std::move(done)](Result<std::string> reply) {
              if (!reply.ok()) {
                done(reply.status());
                return;
              }
              done(DecodeCountersReply(reply.value()));
            });
}

void HelixClient::FetchOutputAsync(
    uint64_t signature,
    std::function<void(Result<dataflow::DataCollection>)> done) {
  CallAsync(Opcode::kFetchOutput, EncodeFetchOutputRequest(signature),
            [done = std::move(done)](Result<std::string> reply) {
              if (!reply.ok()) {
                done(reply.status());
                return;
              }
              done(DecodeFetchOutputReply(reply.value()));
            });
}

Result<std::string> HelixClient::GetMetricsJson() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kGetMetrics, std::string()));
  return DecodeTextReply(reply);
}

Result<std::string> HelixClient::GetTraceJson() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kGetTrace, std::string()));
  return DecodeTextReply(reply);
}

Status HelixClient::Shutdown() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kShutdown, std::string()));
  return DecodeEmptyReply(reply);
}

void HelixClient::DropConnection(
    const std::shared_ptr<TcpConnection>& expected) {
  std::shared_ptr<TcpConnection> dropped;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    if (conn_ != expected) {
      return;  // someone already swapped/closed it
    }
    dropped = std::move(conn_);
  }
  if (dropped != nullptr) {
    // Unblocks a thread parked inside this connection's recv/send; the
    // shared handle keeps the object alive until that thread lets go.
    dropped->ShutdownBoth();
  }
}

void HelixClient::Close() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conn = conn_;
  }
  DropConnection(conn);
}

}  // namespace net
}  // namespace helix
