#include "net/client.h"

#include <utility>

namespace helix {
namespace net {

Result<std::unique_ptr<HelixClient>> HelixClient::Connect(
    const std::string& host, int port, uint32_t max_payload_bytes) {
  HELIX_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> conn,
                         net::Connect(host, port));
  return std::unique_ptr<HelixClient>(
      new HelixClient(std::move(conn), max_payload_bytes));
}

Result<std::string> HelixClient::Call(Opcode opcode, std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conn = conn_;
  }
  if (conn == nullptr) {
    return Status::IOError("client is closed");
  }
  Result<std::string> result = CallOn(conn.get(), opcode,
                                      std::move(payload));
  if (!result.ok()) {
    // Any transport or framing failure leaves the request/reply stream in
    // an unknown position; nothing sent later could be matched to its
    // reply, so fail fast from here on instead of cascading mismatches.
    DropConnection(conn);
  }
  return result;
}

Result<std::string> HelixClient::CallOn(TcpConnection* conn, Opcode opcode,
                                        std::string payload) {
  Frame request;
  request.opcode = static_cast<uint8_t>(opcode);
  request.request_id = next_request_id_++;
  request.payload = std::move(payload);
  HELIX_RETURN_IF_ERROR(WriteFrame(conn, request));
  HELIX_ASSIGN_OR_RETURN(Frame reply,
                         ReadFrame(conn, max_payload_bytes_));
  if (reply.opcode != static_cast<uint8_t>(Opcode::kReply)) {
    return Status::Corruption("server sent a non-reply frame (opcode " +
                              std::to_string(reply.opcode) + ")");
  }
  if (reply.request_id != request.request_id) {
    // One request in flight per connection, so a mismatched id means the
    // stream is out of step.
    return Status::Corruption("reply id mismatch: sent " +
                              std::to_string(request.request_id) +
                              ", got " + std::to_string(reply.request_id));
  }
  return std::move(reply.payload);
}

Result<uint64_t> HelixClient::OpenSession(const std::string& name) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kOpenSession, EncodeOpenSessionRequest(name)));
  return DecodeOpenSessionReply(reply);
}

Result<RemoteIterationResult> HelixClient::RunIteration(
    uint64_t session_id, const WorkflowSpec& spec,
    const std::string& description, core::ChangeCategory category) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kRunIteration,
           EncodeRunIterationRequest(session_id, spec, description,
                                     category)));
  return DecodeRunIterationReply(reply);
}

Result<service::SessionCounters> HelixClient::GetCounters(
    uint64_t session_id) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kGetCounters, EncodeGetCountersRequest(session_id)));
  return DecodeCountersReply(reply);
}

Result<dataflow::DataCollection> HelixClient::FetchOutput(
    uint64_t signature) {
  HELIX_ASSIGN_OR_RETURN(
      std::string reply,
      Call(Opcode::kFetchOutput, EncodeFetchOutputRequest(signature)));
  return DecodeFetchOutputReply(reply);
}

Result<std::string> HelixClient::GetMetricsJson() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kGetMetrics, std::string()));
  return DecodeTextReply(reply);
}

Result<std::string> HelixClient::GetTraceJson() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kGetTrace, std::string()));
  return DecodeTextReply(reply);
}

Status HelixClient::Shutdown() {
  HELIX_ASSIGN_OR_RETURN(std::string reply,
                         Call(Opcode::kShutdown, std::string()));
  return DecodeEmptyReply(reply);
}

void HelixClient::DropConnection(
    const std::shared_ptr<TcpConnection>& expected) {
  std::shared_ptr<TcpConnection> dropped;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    if (conn_ != expected) {
      return;  // someone already swapped/closed it
    }
    dropped = std::move(conn_);
  }
  if (dropped != nullptr) {
    // Unblocks a thread parked inside this connection's recv/send; the
    // shared handle keeps the object alive until that thread lets go.
    dropped->ShutdownBoth();
  }
}

void HelixClient::Close() {
  // Deliberately does NOT take mu_: a Call blocked on a dead server holds
  // mu_ for the whole round trip, and Close must still be able to cut the
  // socket out from under it.
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> conn_lock(conn_mu_);
    conn = conn_;
  }
  DropConnection(conn);
}

}  // namespace net
}  // namespace helix
