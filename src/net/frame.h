// The HELIX wire framing: length-prefixed, checksummed binary frames.
//
// Every message in either direction is one frame (all integers
// little-endian, via common/bytes.h):
//
//   offset  size  field
//   0       4     magic 0x584C4548 ("HELX")
//   4       1     protocol version (kProtocolVersion)
//   5       1     opcode (net/wire.h)
//   6       8     request id (echoed verbatim on the reply)
//   14      4     payload length N
//   18      N     payload (opcode-specific, see net/wire.h)
//   18+N    8     FNV-64 checksum over bytes [0, 18+N)
//
// Decoding is defensive by construction: a reader trusts nothing until the
// magic, version, and length bound have been validated and the checksum has
// matched — truncated, corrupt, oversized, or alien bytes must surface as a
// clean Status, never as a crash or an over-allocation (the length bound is
// checked *before* the payload is read, so a hostile 4 GiB length never
// allocates 4 GiB).
#ifndef HELIX_NET_FRAME_H_
#define HELIX_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/spans.h"
#include "common/status.h"
#include "net/socket.h"

namespace helix {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x584C4548;  // "HELX" when LE
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 18;
inline constexpr size_t kFrameChecksumBytes = 8;
/// Default bound on one frame's payload; a decoder rejects larger lengths
/// before reading (or allocating) the payload.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 64u << 20;

/// One decoded frame.
struct Frame {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes header + payload + checksum.
std::string EncodeFrame(const Frame& frame);

/// Decodes one complete frame from `bytes` (which must be exactly one
/// frame). Corruption on bad magic / bad checksum / truncation,
/// InvalidArgument on an unsupported version, ResourceExhausted on a
/// payload length beyond `max_payload_bytes`.
Result<Frame> DecodeFrame(std::string_view bytes,
                          uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

/// Incremental decoder for a growing receive buffer (the event loop's
/// nonblocking read path): examines the front of `buffer` and returns the
/// number of bytes one complete frame consumed (header + payload +
/// checksum), with the decoded frame in `*out` — or 0 when the buffer does
/// not yet hold a complete frame (read more bytes and retry; nothing is
/// consumed). Validation and error taxonomy are exactly DecodeFrame's,
/// applied as early as the bytes allow: a bad magic or an oversized length
/// fails as soon as the 18-byte header is buffered, without waiting for
/// the (untrustworthy) payload. When the fixed header parses, a non-null
/// `request_id_out` receives its request id even if validation then fails,
/// so a server can address its error reply.
Result<size_t> DecodeFrameFromBuffer(
    std::string_view buffer, uint32_t max_payload_bytes, Frame* out,
    uint64_t* request_id_out = nullptr);

/// Reads exactly one frame from the connection. Same error taxonomy as
/// DecodeFrame, plus NotFound("connection closed") on a clean end-of-stream
/// at a frame boundary and IOError on a torn stream. When the fixed header
/// parses (even if the body then fails validation), `request_id_out` (if
/// non-null) receives the header's request id so a server can address its
/// error reply.
Result<Frame> ReadFrame(TcpConnection* conn, uint32_t max_payload_bytes,
                        uint64_t* request_id_out = nullptr);

/// Encodes and writes one frame.
Status WriteFrame(TcpConnection* conn, const Frame& frame);

/// Writes one frame whose payload is `payload`'s span list, via one
/// gathered writev-style call: header, then the spans as-is, then the
/// checksum — the payload bytes are never copied into a contiguous
/// buffer. On the wire this is byte-identical to WriteFrame of the
/// flattened payload; any borrowed memory must stay alive for the call.
Status WriteFrameSpans(TcpConnection* conn, uint8_t opcode,
                       uint64_t request_id, SpanWriter* payload);

/// Builds the header and checksum-trailer bytes of the frame
/// WriteFrameSpans would emit for `payload`'s span list — the two owned
/// pieces a caller queues around the borrowed spans for a *deferred*
/// gathered write (the event loop's outbound queue). Concatenating
/// header + spans + trailer is byte-identical to EncodeFrame of the
/// flattened payload.
void BuildFrameParts(uint8_t opcode, uint64_t request_id,
                     SpanWriter* payload, std::string* header_out,
                     std::string* trailer_out);

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_FRAME_H_
