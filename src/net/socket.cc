#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <limits.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace helix {
namespace net {
namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

// Iteration latency is the resource users feel (the whole point of the
// paper); a 40ms Nagle stall per small request frame would dwarf it.
void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Errno("fcntl(F_GETFL)");
  }
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status TcpConnection::WriteAll(const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a dying peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      last_errno_ = errno;
      return Errno("send");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpConnection::WritevAll(const struct iovec* iov, size_t iovcnt) {
  // Mutable copy: partial writes advance iov_base/iov_len in place.
  std::vector<struct iovec> vec(iov, iov + iovcnt);
  size_t idx = 0;
  while (idx < vec.size()) {
    if (vec[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_iov = &vec[idx];
    msg.msg_iovlen = std::min<size_t>(vec.size() - idx,
                                      static_cast<size_t>(IOV_MAX));
    // sendmsg rather than writev for MSG_NOSIGNAL, same as WriteAll.
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      last_errno_ = errno;
      return Errno("sendmsg");
    }
    size_t wrote = static_cast<size_t>(n);
    while (idx < vec.size() && wrote >= vec[idx].iov_len) {
      wrote -= vec[idx].iov_len;
      ++idx;
    }
    if (idx < vec.size() && wrote > 0) {
      vec[idx].iov_base = static_cast<char*>(vec[idx].iov_base) + wrote;
      vec[idx].iov_len -= wrote;
    }
  }
  return Status::OK();
}

Result<bool> TcpConnection::ReadAllOrEof(void* data, size_t len) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      last_errno_ = errno;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        return false;  // clean close between messages
      }
      return Status::IOError("connection closed mid-message");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

void TcpConnection::ShutdownBoth() { (void)::shutdown(fd_, SHUT_RDWR); }

void TcpConnection::SetSendTimeout(int seconds) {
  timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  (void)setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

TcpListener::~TcpListener() {
  Close();
  // Safe to actually release the descriptor now: the owner destroys the
  // listener only after joining every thread that could call Accept.
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const std::string& host, int port) {
  // Resolve through getaddrinfo exactly as Connect does — the listener and
  // the client must agree on what a host string means ("localhost" used to
  // connect fine but fail to bind). AI_PASSIVE turns an empty host into
  // the wildcard address.
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument(StrFormat(
        "cannot resolve listen host %s: %s", host.c_str(),
        gai_strerror(rc)));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("bind");
      ::close(fd);
      continue;
    }
    if (::listen(fd, /*backlog=*/256) != 0) {
      last = Errno("listen");
      ::close(fd);
      continue;
    }
    sockaddr_in addr;
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
      last = Errno("getsockname");
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(res);
    int bound_port = static_cast<int>(ntohs(addr.sin_port));
    return std::unique_ptr<TcpListener>(new TcpListener(fd, bound_port));
  }
  ::freeaddrinfo(res);
  return last;
}

Result<std::unique_ptr<TcpConnection>> TcpListener::Accept() {
  while (true) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("listener closed");
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (closed_.load(std::memory_order_acquire)) {
      // Close() ran while we were parked; whatever accept returned (a
      // late connection, ECONNABORTED, EINVAL) this is an orderly stop.
      if (fd >= 0) {
        ::close(fd);
      }
      return Status::FailedPrecondition("listener closed");
    }
    if (fd >= 0) {
      SetNoDelay(fd);
      return std::make_unique<TcpConnection>(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
      // The connection died between the kernel queue and us; POSIX says
      // retry, not fail.
      continue;
    }
    return Errno("accept");
  }
}

void TcpListener::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    // Wakes a thread parked in accept(); the fd is NOT closed here (see
    // the header comment on descriptor recycling).
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

Result<std::unique_ptr<TcpConnection>> Connect(const std::string& host,
                                               int port) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IOError(StrFormat("getaddrinfo(%s): %s", host.c_str(),
                                     gai_strerror(rc)));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      SetNoDelay(fd);
      ::freeaddrinfo(res);
      return std::make_unique<TcpConnection>(fd);
    }
    last = Errno("connect");
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace net
}  // namespace helix
