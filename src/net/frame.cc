#include "net/frame.h"

#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"

namespace helix {
namespace net {
namespace {

// Validated header fields, shared by the buffer and stream decoders.
struct Header {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

// Parses and validates the fixed 18-byte header.
Result<Header> DecodeHeader(std::string_view bytes,
                            uint32_t max_payload_bytes) {
  ByteReader reader(bytes);
  HELIX_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  HELIX_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  Header header;
  HELIX_ASSIGN_OR_RETURN(header.opcode, reader.GetU8());
  HELIX_ASSIGN_OR_RETURN(header.request_id, reader.GetU64());
  HELIX_ASSIGN_OR_RETURN(header.payload_len, reader.GetU32());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(version));
  }
  if (header.payload_len > max_payload_bytes) {
    return Status::ResourceExhausted(
        "frame payload of " + std::to_string(header.payload_len) +
        " bytes exceeds the " + std::to_string(max_payload_bytes) +
        "-byte limit");
  }
  return header;
}

// Verifies the trailing checksum over everything before it.
Status VerifyChecksum(std::string_view covered, std::string_view trailer) {
  ByteReader reader(trailer);
  HELIX_ASSIGN_OR_RETURN(uint64_t declared, reader.GetU64());
  if (declared != FnvHash64(covered)) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  ByteWriter writer;
  writer.Reserve(kFrameHeaderBytes + frame.payload.size() +
                 kFrameChecksumBytes);
  writer.PutU32(kFrameMagic);
  writer.PutU8(kProtocolVersion);
  writer.PutU8(frame.opcode);
  writer.PutU64(frame.request_id);
  writer.PutU32(static_cast<uint32_t>(frame.payload.size()));
  writer.PutRaw(frame.payload.data(), frame.payload.size());
  writer.PutU64(FnvHash64(writer.data()));
  return std::move(writer.TakeData());
}

Result<Frame> DecodeFrame(std::string_view bytes,
                          uint32_t max_payload_bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  HELIX_ASSIGN_OR_RETURN(
      Header header,
      DecodeHeader(bytes.substr(0, kFrameHeaderBytes), max_payload_bytes));
  size_t total =
      kFrameHeaderBytes + header.payload_len + kFrameChecksumBytes;
  if (bytes.size() != total) {
    return Status::Corruption("frame length mismatch");
  }
  HELIX_RETURN_IF_ERROR(VerifyChecksum(
      bytes.substr(0, kFrameHeaderBytes + header.payload_len),
      bytes.substr(kFrameHeaderBytes + header.payload_len)));
  Frame frame;
  frame.opcode = header.opcode;
  frame.request_id = header.request_id;
  frame.payload.assign(bytes.data() + kFrameHeaderBytes, header.payload_len);
  return frame;
}

Result<size_t> DecodeFrameFromBuffer(std::string_view buffer,
                                     uint32_t max_payload_bytes, Frame* out,
                                     uint64_t* request_id_out) {
  if (buffer.size() < kFrameHeaderBytes) {
    return static_cast<size_t>(0);  // header not yet buffered
  }
  // Surface the request id before validation, as ReadFrame does.
  if (request_id_out != nullptr) {
    ByteReader reader(buffer);
    (void)reader.GetU32();
    (void)reader.GetU8();
    (void)reader.GetU8();
    Result<uint64_t> id = reader.GetU64();
    if (id.ok()) {
      *request_id_out = id.value();
    }
  }
  // Header validation fails fast: a hostile magic or length must not make
  // the reader buffer (or wait for) a payload it will never trust.
  HELIX_ASSIGN_OR_RETURN(
      Header header,
      DecodeHeader(buffer.substr(0, kFrameHeaderBytes), max_payload_bytes));
  size_t total = kFrameHeaderBytes + header.payload_len + kFrameChecksumBytes;
  if (buffer.size() < total) {
    return static_cast<size_t>(0);  // payload/trailer not yet buffered
  }
  HELIX_RETURN_IF_ERROR(VerifyChecksum(
      buffer.substr(0, kFrameHeaderBytes + header.payload_len),
      buffer.substr(kFrameHeaderBytes + header.payload_len,
                    kFrameChecksumBytes)));
  out->opcode = header.opcode;
  out->request_id = header.request_id;
  out->payload.assign(buffer.data() + kFrameHeaderBytes, header.payload_len);
  return total;
}

Result<Frame> ReadFrame(TcpConnection* conn, uint32_t max_payload_bytes,
                        uint64_t* request_id_out) {
  std::string header_bytes(kFrameHeaderBytes, '\0');
  {
    HELIX_ASSIGN_OR_RETURN(
        bool got,
        conn->ReadAllOrEof(header_bytes.data(), header_bytes.size()));
    if (!got) {
      return Status::NotFound("connection closed");
    }
  }
  // Surface the request id even when validation below fails, so the server
  // can tell the sender *which* request died before dropping the stream.
  {
    ByteReader reader(header_bytes);
    (void)reader.GetU32();
    (void)reader.GetU8();
    (void)reader.GetU8();
    Result<uint64_t> id = reader.GetU64();
    if (id.ok() && request_id_out != nullptr) {
      *request_id_out = id.value();
    }
  }
  HELIX_ASSIGN_OR_RETURN(Header header,
                         DecodeHeader(header_bytes, max_payload_bytes));
  std::string rest(header.payload_len + kFrameChecksumBytes, '\0');
  {
    HELIX_ASSIGN_OR_RETURN(bool got,
                           conn->ReadAllOrEof(rest.data(), rest.size()));
    if (!got) {
      return Status::IOError("connection closed mid-frame");
    }
  }
  // Hash incrementally (header, then payload in place) instead of
  // concatenating: a frame near the payload limit must not cost three
  // transient copies of itself on the hot request path.
  uint64_t computed = FnvHash64(header_bytes);
  computed = FnvHash64(rest.data(), header.payload_len, computed);
  uint64_t declared = 0;
  {
    ByteReader trailer(
        std::string_view(rest).substr(header.payload_len));
    HELIX_ASSIGN_OR_RETURN(declared, trailer.GetU64());
  }
  if (declared != computed) {
    return Status::Corruption("frame checksum mismatch");
  }
  Frame frame;
  frame.opcode = header.opcode;
  frame.request_id = header.request_id;
  rest.resize(header.payload_len);  // drop the trailer, keep the payload
  frame.payload = std::move(rest);
  return frame;
}

Status WriteFrame(TcpConnection* conn, const Frame& frame) {
  std::string bytes = EncodeFrame(frame);
  return conn->WriteAll(bytes.data(), bytes.size());
}

void BuildFrameParts(uint8_t opcode, uint64_t request_id,
                     SpanWriter* payload, std::string* header_out,
                     std::string* trailer_out) {
  ByteWriter header;
  header.Reserve(kFrameHeaderBytes);
  header.PutU32(kFrameMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(opcode);
  header.PutU64(request_id);
  header.PutU32(static_cast<uint32_t>(payload->TotalBytes()));
  // The checksum streams over header + spans — same digest EncodeFrame
  // computes over its contiguous buffer.
  uint64_t checksum = FnvHash64(header.data());
  for (const ByteSpan& s : payload->spans()) {
    checksum = FnvHash64(s.data, s.len, checksum);
  }
  ByteWriter trailer;
  trailer.PutU64(checksum);
  *header_out = std::move(header.TakeData());
  *trailer_out = std::move(trailer.TakeData());
}

Status WriteFrameSpans(TcpConnection* conn, uint8_t opcode,
                       uint64_t request_id, SpanWriter* payload) {
  std::string header;
  std::string trailer;
  BuildFrameParts(opcode, request_id, payload, &header, &trailer);
  const std::vector<ByteSpan>& spans = payload->spans();
  std::vector<struct iovec> iov;
  iov.reserve(spans.size() + 2);
  iov.push_back({header.data(), header.size()});
  for (const ByteSpan& s : spans) {
    iov.push_back({const_cast<char*>(s.data), s.len});
  }
  iov.push_back({trailer.data(), trailer.size()});
  return conn->WritevAll(iov.data(), iov.size());
}

}  // namespace net
}  // namespace helix
