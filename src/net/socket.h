// Thin POSIX TCP wrappers for the network layer.
//
// Deliberately minimal: Status-based errors over blocking sockets, IPv4 —
// the framing protocol (net/frame.h) and the blocking client need exactly
// "read N bytes / write N bytes / unblock a blocked peer". The epoll
// server (net/event_loop.h) drives the same descriptors nonblocking; the
// fd accessors and SetNonBlocking below are its escape hatch from the
// blocking helpers.
#ifndef HELIX_NET_SOCKET_H_
#define HELIX_NET_SOCKET_H_

#include <sys/uio.h>

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace helix {
namespace net {

/// One connected TCP stream. Thread safety: WriteAll and ReadAll may run
/// concurrently with each other (full duplex) and with ShutdownBoth, but
/// each direction must be driven by at most one thread at a time — callers
/// needing concurrent writers serialize externally (the server holds a
/// per-connection write mutex). Ownership: closes the fd on destruction.
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Writes exactly `len` bytes; IOError if the peer went away.
  Status WriteAll(const void* data, size_t len);

  /// Gathered write: sends every byte of `iov[0..iovcnt)` in order
  /// without concatenating them first (the zero-copy reply path).
  /// Handles partial writes and IOV_MAX batching; same error contract as
  /// WriteAll. The iovec array is not modified.
  Status WritevAll(const struct iovec* iov, size_t iovcnt);

  /// Reads exactly `len` bytes. Returns true on success, false on a clean
  /// end-of-stream *before the first byte* (orderly peer close between
  /// messages); IOError on mid-buffer EOF or a socket error.
  Result<bool> ReadAllOrEof(void* data, size_t len);

  /// Half-closes both directions, unblocking any thread inside ReadAllOrEof
  /// or WriteAll on this connection (their calls then fail cleanly). Safe
  /// to call from any thread, repeatedly.
  void ShutdownBoth();

  /// Bounds how long WriteAll may block on a full send buffer; afterwards
  /// a stalled write fails with IOError instead of blocking forever. A
  /// server sets this on accepted connections so a client that stops
  /// reading cannot pin a worker thread.
  void SetSendTimeout(int seconds);

  int fd() const { return fd_; }

  /// The errno of this connection's most recent failed I/O call (0 if none
  /// has failed). Lets a caller classify *why* a write died — EPIPE /
  /// ECONNRESET is a peer that went away, EAGAIN / EWOULDBLOCK out of a
  /// blocking call is the send-timeout slow-reader defense firing — which
  /// the Status message alone does not carry reliably. Meaningful only on
  /// the thread driving that direction (same discipline as the I/O calls).
  int last_errno() const { return last_errno_; }

 private:
  int fd_;
  int last_errno_ = 0;
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Binds and listens on `host:port`. The host is resolved through
  /// getaddrinfo (AI_PASSIVE) exactly like Connect's — numeric IPv4
  /// ("127.0.0.1") and resolvable names ("localhost") both work, and an
  /// empty host binds the wildcard address. Port 0 picks an ephemeral
  /// port — read the resolved one from port().
  static Result<std::unique_ptr<TcpListener>> Listen(const std::string& host,
                                                     int port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection. After Close() (from any thread),
  /// returns FailedPrecondition instead of blocking forever.
  Result<std::unique_ptr<TcpConnection>> Accept();

  /// Shuts the listening socket down, unblocking a blocked Accept. The fd
  /// itself stays open until destruction: closing it here would let the
  /// kernel recycle the descriptor number while another thread is still
  /// about to accept(2) on it — the classic close/reuse TOCTOU.
  void Close();

  /// The locally bound port (the ephemeral choice when opened with 0).
  int port() const { return port_; }

  /// The listening descriptor, for readiness-driven owners (the event
  /// loop epolls it and accepts nonblocking instead of calling Accept).
  int fd() const { return fd_; }

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  const int fd_;
  int port_;
  /// Set (once) by Close(); checked by Accept() around the accept call so
  /// a post-shutdown wakeup reads as an orderly close.
  std::atomic<bool> closed_{false};
};

/// Connects to `host:port` (numeric IPv4 or a resolvable hostname).
Result<std::unique_ptr<TcpConnection>> Connect(const std::string& host,
                                               int port);

/// Sets O_NONBLOCK on `fd` (the event loop's accepted sockets and
/// listener).
Status SetNonBlocking(int fd);

/// Enables TCP_NODELAY on `fd` (Accept and Connect already do; exposed for
/// sockets accepted outside them).
void SetNoDelay(int fd);

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_SOCKET_H_
