// HelixServer: the SessionService behind a TCP wire.
//
// One server owns one service::SessionService (shared store, stats
// registry, thread pool, in-flight table, background writer) and serves
// OpenSession / RunIteration / GetCounters / Shutdown over the framing
// protocol (net/frame.h). Threading model:
//
//   * one accept thread;
//   * one reader thread per connection, which parses frames and dispatches
//     each valid request onto the service's *shared* ThreadPool — so
//     concurrently executing iterations are bounded by the pool, not by
//     the connection count, exactly as for in-process SubmitIteration;
//   * replies are written by the pool task under a per-connection write
//     mutex (requests on one connection may pipeline; the request id keys
//     replies to requests).
//
// A malformed frame (bad checksum, oversized length, torn bytes) gets a
// best-effort error reply and the connection is dropped — the stream can no
// longer be trusted — while every other connection keeps serving. A
// well-framed but unknown opcode is answered with InvalidArgument and the
// connection stays up.
//
// Shutdown/drain ordering (Stop): stop accepting -> unblock and join the
// per-connection readers (no new requests) -> wait for in-flight handlers
// to finish writing replies -> destroy the service (which drains the pool
// and writer, then persists stats). A Shutdown RPC does not stop the
// server from inside a pool task (that would deadlock the drain); it is
// acked, recorded, and surfaced through WaitForShutdownRequest for the
// owner to act on.
#ifndef HELIX_NET_SERVER_H_
#define HELIX_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/session_service.h"

namespace helix {
namespace net {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port from HelixServer::port().
  int port = 0;
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// When true (default), FetchOutput replies are written as a gathered
  /// span list over the stored columns' own buffers (header + borrowed
  /// bodies + checksum in one writev) — a cache-hit reply never copies the
  /// payload into a contiguous buffer. Off = flatten-and-WriteFrame, kept
  /// for benchmarks and as a fallback; the wire bytes are identical.
  bool zero_copy_replies = true;
  /// Options for the owned SessionService.
  service::ServiceOptions service;
};

/// See the file comment. Thread safety: port(), service(), Stop(), and
/// WaitForShutdownRequest() are safe from any thread; Stop() is
/// idempotent. Ownership: the server owns the listener, all connections,
/// and the SessionService; destruction runs Stop().
class HelixServer {
 public:
  static Result<std::unique_ptr<HelixServer>> Start(
      const ServerOptions& options, WorkflowResolver resolver);

  ~HelixServer();

  HelixServer(const HelixServer&) = delete;
  HelixServer& operator=(const HelixServer&) = delete;

  int port() const { return listener_->port(); }

  /// The owned service; nullptr once Stop() has torn it down. The pointer
  /// is only as durable as the server's running state — do not cache it
  /// across a concurrent Stop()/destruction.
  service::SessionService* service() {
    std::lock_guard<std::mutex> lock(state_mu_);
    return service_.get();
  }

  /// Blocks until a client's Shutdown RPC arrives or Stop() is called.
  void WaitForShutdownRequest();

  /// Stops serving: see the file comment for the drain ordering. After
  /// Stop() the service is destroyed and service() returns nullptr.
  void Stop();

 private:
  struct Connection {
    std::unique_ptr<TcpConnection> conn;
    std::mutex write_mu;
    std::thread reader;
    /// Set by the reader as its last action; the accept loop reaps
    /// (joins + unregisters) done connections so a long-running server
    /// does not accumulate one fd + thread per past client.
    std::atomic<bool> done{false};
    /// Per-connection traffic accounting (frames and on-the-wire bytes,
    /// header + payload + checksum). Folded into the service registry's
    /// `server.frames_in/out` and `server.bytes_in/out` totals as they
    /// happen; kept per-connection so a busy tenant is attributable.
    std::atomic<int64_t> frames_in{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> frames_out{0};
    std::atomic<int64_t> bytes_out{0};
  };

  HelixServer(ServerOptions options, WorkflowResolver resolver)
      : options_(std::move(options)), resolver_(std::move(resolver)) {}

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> connection);
  /// Runs on a pool worker: decodes, executes, and answers one request.
  /// `enqueue_micros` is the reader's dispatch timestamp (steady clock),
  /// feeding the `server.queue_micros` histogram.
  void HandleRequest(const std::shared_ptr<Connection>& connection,
                     Frame frame, int64_t enqueue_micros);
  std::string HandleOpenSession(const Frame& frame);
  std::string HandleRunIteration(const Frame& frame);
  std::string HandleGetCounters(const Frame& frame);
  std::string HandleGetMetrics(const Frame& frame);
  std::string HandleGetTrace(const Frame& frame);
  /// Unlike the handlers above, FetchOutput writes its own reply: the
  /// zero-copy path must keep the stored DataCollection alive while its
  /// borrowed spans are on the wire, so encode and write share a scope.
  void HandleFetchOutput(const std::shared_ptr<Connection>& connection,
                         const Frame& frame, int64_t handler_start);
  void WriteReply(const std::shared_ptr<Connection>& connection,
                  uint64_t request_id, std::string payload);
  /// WriteReply for a span-list payload (WriteFrameSpans underneath);
  /// identical accounting and failure handling.
  void WriteReplySpans(const std::shared_ptr<Connection>& connection,
                       uint64_t request_id, SpanWriter* payload);

  const ServerOptions options_;
  const WorkflowResolver resolver_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<service::SessionService> service_;
  std::thread accept_thread_;

  // Request-phase histograms and traffic counters, registered in the
  // service's metrics registry at Start. The registry outlives Stop()'s
  // service teardown window only as part of the service, so handlers only
  // touch these while holding a live Connection dispatched before drain.
  obs::Histogram* decode_micros_ = nullptr;      // ReadFrame (incl. wire wait)
  obs::Histogram* queue_micros_ = nullptr;       // dispatch -> handler start
  obs::Histogram* execute_micros_ = nullptr;     // handler body
  obs::Histogram* reply_write_micros_ = nullptr; // WriteFrame on the socket
  obs::Counter* frames_in_total_ = nullptr;
  obs::Counter* bytes_in_total_ = nullptr;
  obs::Counter* frames_out_total_ = nullptr;
  obs::Counter* bytes_out_total_ = nullptr;
  obs::Counter* requests_total_ = nullptr;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex sessions_mu_;
  std::unordered_map<uint64_t, service::ServiceSession*> sessions_;

  // Outstanding handler tasks on the shared pool; Stop drains to zero
  // before destroying the service.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t outstanding_ = 0;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_SERVER_H_
