// HelixServer: the SessionService behind a TCP wire.
//
// One server owns one service::SessionService (shared store, stats
// registry, thread pool, in-flight table, background writer) and serves
// OpenSession / RunIteration / GetCounters / FetchOutput / CloseSession /
// Shutdown over the framing protocol (net/frame.h). Two transport modes
// share every handler:
//
//   * event-loop mode (default): a small fixed set of epoll I/O threads
//     (net/event_loop.h) drives every connection — nonblocking reads into
//     per-connection buffers, incremental frame decoding, and buffered
//     outbound queues flushed on write readiness. Thread count is
//     io_threads + the service pool, independent of the connection count.
//   * thread mode (ServerOptions::event_loop = false): the legacy one
//     blocking reader thread per connection, kept as the differential
//     baseline for tests and the bench_net scaling curve.
//
// In both modes each valid request is dispatched onto the service's
// *shared* ThreadPool — concurrently executing iterations are bounded by
// the pool, not the connection count — and replies are keyed to requests
// by request id, so one connection may pipeline.
//
// Backpressure is explicit: past max_inflight_per_connection /
// max_inflight_total dispatched-but-unanswered requests, further frames
// are answered immediately with ResourceExhausted (counted in
// server.requests_shed) and the connection survives. A peer that stops
// reading its replies is torn down — in event-loop mode when its outbound
// queue exceeds max_outbound_queue_bytes, in thread mode via the
// SO_SNDTIMEO write timeout. Reply-write failures are classified:
// server.reply_timeouts counts slow-reader kills, server.reply_drops
// counts peers that vanished (EPIPE / ECONNRESET / torn streams).
//
// Session lifecycle: OpenSession registers a service session and ties it
// to the connection that opened it; CloseSession (or the connection
// dropping, or server shutdown) retires it. Retired sessions fold their
// counters into the service aggregate, so GetCounters(0) keeps reporting
// the work of clients that have since disconnected.
//
// A malformed frame (bad checksum, oversized length, torn bytes) gets a
// best-effort error reply and the connection is dropped — the stream can
// no longer be trusted — while every other connection keeps serving. A
// well-framed but unknown opcode is answered with InvalidArgument and the
// connection stays up.
//
// Shutdown/drain ordering (Stop): stop accepting -> tear down transports
// (join the event loop or the per-connection readers; no new requests) ->
// wait for in-flight handlers to finish -> destroy the service (which
// drains the pool and writer, then persists stats). A Shutdown RPC does
// not stop the server from inside a pool task (that would deadlock the
// drain); it is acked — and the ack flushed to the kernel — before the
// request is surfaced through WaitForShutdownRequest for the owner to act
// on.
#ifndef HELIX_NET_SERVER_H_
#define HELIX_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/session_service.h"

namespace helix {
namespace net {

struct ServerOptions {
  /// Listen address: numeric IPv4 or a resolvable hostname (empty binds
  /// the wildcard address).
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port from HelixServer::port().
  int port = 0;
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// When true (default), FetchOutput replies are written as a gathered
  /// span list over the stored columns' own buffers (header + borrowed
  /// bodies + checksum in one writev) — a cache-hit reply never copies the
  /// payload into a contiguous buffer. Off = flatten-and-WriteFrame, kept
  /// for benchmarks and as a fallback; the wire bytes are identical. In
  /// event-loop mode the queued reply pins the DataCollection until its
  /// spans are flushed.
  bool zero_copy_replies = true;
  /// Transport mode: epoll event loop (default) or the legacy
  /// thread-per-connection blocking readers.
  bool event_loop = true;
  /// Event-loop I/O threads; does not grow with the connection count.
  int io_threads = 2;
  /// Backpressure limits (both modes): dispatched-but-unanswered requests
  /// beyond either bound are shed with ResourceExhausted.
  int max_inflight_per_connection = 64;
  int64_t max_inflight_total = 1024;
  /// Event-loop slow-reader defense: tear a connection down when its
  /// queued unsent replies exceed this many bytes.
  int64_t max_outbound_queue_bytes = 64ll << 20;
  /// Thread-mode slow-reader defense: SO_SNDTIMEO on reply writes.
  int send_timeout_seconds = 30;
  /// Options for the owned SessionService.
  service::ServiceOptions service;
};

/// See the file comment. Thread safety: port(), service(), Stop(), and
/// WaitForShutdownRequest() are safe from any thread; Stop() is
/// idempotent. Ownership: the server owns the listener, the transport
/// (event loop or reader threads), and the SessionService; destruction
/// runs Stop().
class HelixServer {
 public:
  static Result<std::unique_ptr<HelixServer>> Start(
      const ServerOptions& options, WorkflowResolver resolver);

  ~HelixServer();

  HelixServer(const HelixServer&) = delete;
  HelixServer& operator=(const HelixServer&) = delete;

  int port() const { return listener_->port(); }

  /// The owned service; nullptr once Stop() has torn it down. The pointer
  /// is only as durable as the server's running state — do not cache it
  /// across a concurrent Stop()/destruction.
  service::SessionService* service() {
    std::lock_guard<std::mutex> lock(state_mu_);
    return service_.get();
  }

  /// Live client connections (for tests and introspection).
  int64_t num_connections() const;

  /// Blocks until a client's Shutdown RPC arrives or Stop() is called.
  void WaitForShutdownRequest();

  /// Stops serving: see the file comment for the drain ordering. After
  /// Stop() the service is destroyed and service() returns nullptr.
  void Stop();

 private:
  /// One client connection as the request handlers see it, independent of
  /// transport mode: how a reply gets delivered, and which sessions the
  /// connection opened (closed when it drops).
  struct ClientConn {
    virtual ~ClientConn() = default;
    /// Delivers one flat reply frame (thread mode: synchronous write
    /// under the connection's write mutex; event mode: enqueue on the
    /// loop's outbound queue).
    virtual void SendReply(uint64_t request_id, std::string payload) = 0;
    /// Span-list reply (the zero-copy FetchOutput path). The payload and
    /// `pin` stay alive until the bytes reach the kernel.
    virtual void SendReplySpans(uint64_t request_id,
                                std::unique_ptr<SpanWriter> payload,
                                std::shared_ptr<const void> pin) = 0;
    /// Blocks until previously sent replies reached the kernel (the
    /// Shutdown-ack flush); thread mode writes synchronously and returns
    /// immediately.
    virtual bool WaitRepliesFlushed(int timeout_ms) = 0;

    /// Per-connection traffic accounting (frames and on-the-wire bytes,
    /// header + payload + checksum), folded into the registry totals as
    /// they happen; kept per-connection so a busy tenant is attributable.
    std::atomic<int64_t> frames_in{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> frames_out{0};
    std::atomic<int64_t> bytes_out{0};

    /// Sessions opened by this connection, retired when it drops.
    std::mutex sessions_mu;
    std::vector<uint64_t> session_ids;
  };
  struct ThreadConn;  // thread mode (defined in server.cc)
  struct EventConn;   // event-loop mode (defined in server.cc)

  HelixServer(ServerOptions options, WorkflowResolver resolver)
      : options_(std::move(options)), resolver_(std::move(resolver)) {}

  // Thread-mode transport.
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<ThreadConn> connection);

  // Event-mode transport callbacks (run on the loop threads).
  void OnLoopAccept(const std::shared_ptr<EventLoop::Conn>& conn);
  void OnLoopFrame(const std::shared_ptr<EventLoop::Conn>& conn,
                   Frame&& frame, int64_t decode_micros);
  void OnLoopHangup(const std::shared_ptr<EventLoop::Conn>& conn,
                    HangupReason reason);

  /// Shared dispatch: bumps the drain gauge and schedules HandleRequest
  /// on the service pool. `on_done` (optional) runs after the handler
  /// finishes (thread mode's in-flight release). False when the pool
  /// refused the task (shutdown); the error reply was already sent.
  bool DispatchFrame(const std::shared_ptr<ClientConn>& conn, Frame frame,
                     std::function<void()> on_done);
  /// Runs on a pool worker: decodes, executes, and answers one request.
  /// `enqueue_micros` is the dispatch timestamp (steady clock), feeding
  /// the `server.queue_micros` histogram.
  void HandleRequest(const std::shared_ptr<ClientConn>& connection,
                     Frame frame, int64_t enqueue_micros);
  std::string HandleOpenSession(const std::shared_ptr<ClientConn>& connection,
                                const Frame& frame);
  std::string HandleCloseSession(
      const std::shared_ptr<ClientConn>& connection, const Frame& frame);
  std::string HandleRunIteration(const Frame& frame);
  std::string HandleGetCounters(const Frame& frame);
  std::string HandleGetMetrics(const Frame& frame);
  std::string HandleGetTrace(const Frame& frame);
  /// Unlike the handlers above, FetchOutput delivers its own reply: the
  /// zero-copy path hands the stored DataCollection to the transport as
  /// the pin keeping its borrowed spans alive until flushed.
  void HandleFetchOutput(const std::shared_ptr<ClientConn>& connection,
                         const Frame& frame, int64_t handler_start);
  /// Retires every session this connection opened (close-on-disconnect).
  void CloseConnectionSessions(ClientConn* connection);
  /// Folds one received frame into the traffic counters.
  void AccountFrameIn(ClientConn* connection, size_t payload_bytes);
  /// Folds one delivered reply into the traffic counters and the
  /// reply_write histogram (wire time in thread mode, enqueue cost in
  /// event mode).
  void AccountReplyOut(ClientConn* connection, size_t payload_bytes,
                       int64_t write_start);

  const ServerOptions options_;
  const WorkflowResolver resolver_;
  std::unique_ptr<TcpListener> listener_;
  std::unique_ptr<service::SessionService> service_;
  std::unique_ptr<EventLoop> event_loop_;  // event mode only
  std::thread accept_thread_;              // thread mode only

  // Request-phase histograms and traffic counters, registered in the
  // service's metrics registry at Start. The registry outlives Stop()'s
  // service teardown window only as part of the service, so handlers only
  // touch these while holding a live ClientConn dispatched before drain.
  obs::Histogram* decode_micros_ = nullptr;      // frame read/parse
  obs::Histogram* queue_micros_ = nullptr;       // dispatch -> handler start
  obs::Histogram* execute_micros_ = nullptr;     // handler body
  obs::Histogram* reply_write_micros_ = nullptr; // write (or enqueue)
  obs::Counter* frames_in_total_ = nullptr;
  obs::Counter* bytes_in_total_ = nullptr;
  obs::Counter* frames_out_total_ = nullptr;
  obs::Counter* bytes_out_total_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  /// Backpressure and failure-classification counters (always registered,
  /// so telemetry checks can assert their presence even at zero).
  obs::Counter* requests_shed_ = nullptr;
  obs::Counter* reply_drops_ = nullptr;
  obs::Counter* reply_timeouts_ = nullptr;

  std::mutex conns_mu_;  // thread mode connection registry
  std::vector<std::shared_ptr<ThreadConn>> conns_;
  std::atomic<int64_t> thread_mode_connections_{0};

  // Outstanding handler tasks on the shared pool; Stop drains to zero
  // before destroying the service. Doubles as the thread-mode global
  // in-flight gauge for shedding.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t outstanding_ = 0;

  std::mutex state_mu_;
  std::condition_variable state_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
};

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_SERVER_H_
