// HelixClient: asynchronous multiplexing client for the HELIX wire
// protocol.
//
// One client is one TCP connection carrying many in-flight calls at once:
// requests are framed and sent as they arrive (serialized by a send
// mutex), a receiver thread matches replies to pending calls by request
// id, and completions are delivered through callbacks — the server
// answers out of order when its pool finishes out of order, and the
// multiplexing makes that a feature instead of a protocol violation. The
// blocking methods (OpenSession, RunIteration, ...) are thin wrappers
// that issue one async call and wait, so the classic
// one-call-at-a-time usage reads exactly as before; a driver simulating
// K users still opens K clients (one user's edit-and-run loop per
// connection), while a pipelining driver issues K calls on one.
//
// Remote failures come back as the same Status codes the in-process
// SessionService would produce (message prefixed "remote: "); transport
// failures surface as IOError/Corruption. Any transport or framing error
// poisons the connection: every pending call fails with the same status,
// and subsequent calls fail immediately — after a framing error there is
// no trustworthy reply matching.
#ifndef HELIX_NET_CLIENT_H_
#define HELIX_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/result.h"
#include "core/version_manager.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/session_service.h"

namespace helix {
namespace net {

/// See the file comment. Thread safety: every method is safe from any
/// thread; async completions run on the client's receiver thread (submit
/// failures may complete on the caller's thread) — callbacks must not
/// block it on another reply, and must not destroy the client. Ownership:
/// owns its connection and receiver thread; Close() ends the connection
/// (without joining, so it is safe from a callback), destruction joins.
class HelixClient {
 public:
  /// Completion of one raw call: the reply payload (its leading status
  /// still encoded), or the transport error that ended it.
  using ReplyCallback = std::function<void(Result<std::string>)>;

  static Result<std::unique_ptr<HelixClient>> Connect(
      const std::string& host, int port,
      uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  ~HelixClient();

  // --- asynchronous interface ---------------------------------------------

  /// Issues one call without waiting: registers the pending reply, frames
  /// and sends the request, returns. `done` fires exactly once — with the
  /// reply payload when it arrives, or with the error that ended the
  /// call (send failure, connection poisoned, Close).
  void CallAsync(Opcode opcode, std::string payload, ReplyCallback done);

  void RunIterationAsync(
      uint64_t session_id, const WorkflowSpec& spec,
      const std::string& description, core::ChangeCategory category,
      std::function<void(Result<RemoteIterationResult>)> done);
  void GetCountersAsync(
      uint64_t session_id,
      std::function<void(Result<service::SessionCounters>)> done);
  void FetchOutputAsync(
      uint64_t signature,
      std::function<void(Result<dataflow::DataCollection>)> done);

  // --- blocking wrappers --------------------------------------------------

  /// Registers a server-side session and returns its id (valid for this
  /// server's lifetime, usable from any connection).
  Result<uint64_t> OpenSession(const std::string& name);

  /// Retires a server-side session; its counters stay in the service
  /// aggregate. The server also closes sessions opened by a connection
  /// when that connection drops.
  Status CloseSession(uint64_t session_id);

  /// Runs one iteration of `session_id` remotely. The spec is resolved
  /// into a workflow on the server; the reply carries the iteration
  /// summary and per-output fingerprints (payloads stay server-side).
  Result<RemoteIterationResult> RunIteration(uint64_t session_id,
                                             const WorkflowSpec& spec,
                                             const std::string& description,
                                             core::ChangeCategory category);

  /// Counter snapshot of one session, or of the whole service when
  /// `session_id` is 0.
  Result<service::SessionCounters> GetCounters(uint64_t session_id);

  /// Pulls one materialized output out of the server's store by the
  /// executor signature a RunIteration reply carried (RemoteOutput::
  /// signature). NotFound if the store has since evicted it. The server
  /// writes the reply zero-copy (spans over the stored columns + writev)
  /// unless configured otherwise; the bytes received are identical either
  /// way.
  Result<dataflow::DataCollection> FetchOutput(uint64_t signature);

  /// Service-wide metrics snapshot as a JSON document (the same text a
  /// local MetricsRegistry::SnapshotJson() would produce server-side).
  Result<std::string> GetMetricsJson();

  /// Server trace buffer rendered as Chrome trace-event JSON, loadable
  /// in Perfetto / chrome://tracing.
  Result<std::string> GetTraceJson();

  /// Asks the server to shut down. OK means the server acked and will
  /// drain; the connection is unusable afterwards.
  Status Shutdown();

  /// Closes the connection; pending calls fail, subsequent calls fail
  /// with IOError. Safe to call from another thread while a blocking call
  /// is stuck on an unresponsive server — the stuck call is unblocked
  /// (and fails) rather than holding Close hostage.
  void Close();

 private:
  HelixClient(std::unique_ptr<TcpConnection> conn, uint32_t max_payload_bytes)
      : conn_(std::move(conn)), max_payload_bytes_(max_payload_bytes) {}

  /// Issues one async call and blocks for its completion.
  Result<std::string> Call(Opcode opcode, std::string payload);
  /// Matches replies to pending calls until the stream ends or breaks,
  /// then fails whatever is left.
  void ReceiverLoop(std::shared_ptr<TcpConnection> conn);
  /// Fails every pending call with `status` and poisons the client so
  /// later CallAsyncs fail immediately (no receiver is left to answer
  /// them).
  void FailAllPending(const Status& status);
  /// Takes the connection out of service; the shared handle keeps it
  /// alive for a send (or the receiver's read) still using it.
  void DropConnection(const std::shared_ptr<TcpConnection>& expected);

  std::mutex send_mu_;  // serializes request writes onto the stream
  /// Guards only the conn_ pointer, never held across I/O — Close() must
  /// be able to reach the socket while the receiver is blocked in recv.
  std::mutex conn_mu_;
  std::shared_ptr<TcpConnection> conn_;
  const uint32_t max_payload_bytes_;
  std::thread receiver_;
  /// Pending calls by request id, plus the sticky first transport error
  /// (OK while the stream is healthy).
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, ReplyCallback> pending_;
  Status transport_error_;
  std::atomic<uint64_t> next_request_id_{1};
};

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_CLIENT_H_
