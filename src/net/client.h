// HelixClient: blocking client library for the HELIX wire protocol.
//
// One client is one TCP connection and one in-order request/reply stream:
// every call frames its request, sends it, and blocks for the reply with
// the matching request id. Remote failures come back as the same Status
// codes the in-process SessionService would produce (message prefixed
// "remote: "); transport failures surface as IOError. A driver simulating
// K users opens K clients — exactly one user's edit-and-run loop per
// connection, mirroring one ServiceSession per user on the server.
#ifndef HELIX_NET_CLIENT_H_
#define HELIX_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/version_manager.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/session_service.h"

namespace helix {
namespace net {

/// See the file comment. Thread safety: calls are internally serialized
/// (one request in flight per connection); for concurrency open more
/// clients. Ownership: owns its connection; Close() (or destruction) ends
/// it.
class HelixClient {
 public:
  static Result<std::unique_ptr<HelixClient>> Connect(
      const std::string& host, int port,
      uint32_t max_payload_bytes = kDefaultMaxPayloadBytes);

  /// Registers a server-side session and returns its id (valid for this
  /// server's lifetime, usable from any connection).
  Result<uint64_t> OpenSession(const std::string& name);

  /// Runs one iteration of `session_id` remotely. The spec is resolved
  /// into a workflow on the server; the reply carries the iteration
  /// summary and per-output fingerprints (payloads stay server-side).
  Result<RemoteIterationResult> RunIteration(uint64_t session_id,
                                             const WorkflowSpec& spec,
                                             const std::string& description,
                                             core::ChangeCategory category);

  /// Counter snapshot of one session, or of the whole service when
  /// `session_id` is 0.
  Result<service::SessionCounters> GetCounters(uint64_t session_id);

  /// Pulls one materialized output out of the server's store by the
  /// executor signature a RunIteration reply carried (RemoteOutput::
  /// signature). NotFound if the store has since evicted it. The server
  /// writes the reply zero-copy (spans over the stored columns + writev)
  /// unless configured otherwise; the bytes received are identical either
  /// way.
  Result<dataflow::DataCollection> FetchOutput(uint64_t signature);

  /// Service-wide metrics snapshot as a JSON document (the same text a
  /// local MetricsRegistry::SnapshotJson() would produce server-side).
  Result<std::string> GetMetricsJson();

  /// Server trace buffer rendered as Chrome trace-event JSON, loadable
  /// in Perfetto / chrome://tracing.
  Result<std::string> GetTraceJson();

  /// Asks the server to shut down. OK means the server acked and will
  /// drain; the connection is unusable afterwards.
  Status Shutdown();

  /// Closes the connection; subsequent calls fail with IOError. Safe to
  /// call from another thread while a Call is blocked on an unresponsive
  /// server — the blocked call is unblocked (and fails) rather than
  /// holding Close hostage.
  void Close();

 private:
  HelixClient(std::unique_ptr<TcpConnection> conn, uint32_t max_payload_bytes)
      : conn_(std::move(conn)), max_payload_bytes_(max_payload_bytes) {}

  /// Sends one request frame and blocks for its reply payload. The reply's
  /// leading status is decoded by the per-call wrappers. On any transport
  /// or framing error the connection is closed (the stream position is no
  /// longer trustworthy); subsequent calls fail with IOError.
  Result<std::string> Call(Opcode opcode, std::string payload);
  Result<std::string> CallOn(TcpConnection* conn, Opcode opcode,
                             std::string payload);
  /// Takes the connection out of service; the shared handle keeps it
  /// alive for a Call still using it.
  void DropConnection(const std::shared_ptr<TcpConnection>& expected);

  std::mutex mu_;  // serializes Call (one request in flight)
  /// Guards only the conn_ pointer, never held across I/O — Close() must
  /// be able to reach the socket while a Call is blocked inside recv.
  std::mutex conn_mu_;
  std::shared_ptr<TcpConnection> conn_;
  const uint32_t max_payload_bytes_;
  uint64_t next_request_id_ = 1;
};

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_CLIENT_H_
