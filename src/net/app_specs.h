// WorkflowSpec codecs for the paper's applications, and the standard
// server-side resolver.
//
// A remote client edits a CensusConfig / IeConfig locally (the scripted
// human edits of apps/*_app.h), encodes it into a WorkflowSpec, and the
// server resolves the spec back into the identical workflow — identical
// down to operator signatures, so the store, planner, and in-flight table
// behave exactly as if the workflow had been built in-process. Both codecs
// are total inverses over their config structs (pinned by
// tests/net_test.cc round-trip tests); decoding starts from a
// default-constructed config and overrides only the keys present, so newer
// clients may omit fields and older servers ignore keys they do not know.
#ifndef HELIX_NET_APP_SPECS_H_
#define HELIX_NET_APP_SPECS_H_

#include "apps/census_app.h"
#include "apps/ie_app.h"
#include "apps/stream_app.h"
#include "common/result.h"
#include "net/wire.h"

namespace helix {
namespace net {

/// Spec names understood by MakeStandardResolver.
inline constexpr char kCensusApp[] = "census";
inline constexpr char kIeApp[] = "ie";
inline constexpr char kStreamApp[] = "stream";

WorkflowSpec MakeCensusSpec(const apps::CensusConfig& config);
Result<apps::CensusConfig> CensusConfigFromSpec(const WorkflowSpec& spec);

WorkflowSpec MakeIeSpec(const apps::IeConfig& config);
Result<apps::IeConfig> IeConfigFromSpec(const WorkflowSpec& spec);

WorkflowSpec MakeStreamSpec(const apps::StreamConfig& config);
Result<apps::StreamConfig> StreamConfigFromSpec(const WorkflowSpec& spec);

/// Resolver for the standard applications ("census", "ie", "stream");
/// anything else is NotFound. Data paths inside the specs are read
/// server-side.
WorkflowResolver MakeStandardResolver();

}  // namespace net
}  // namespace helix

#endif  // HELIX_NET_APP_SPECS_H_
