// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// Helix's runtime decisions — min-cut load-vs-compute, cost-based
// eviction, cross-session block-and-share — were previously visible only
// as end-of-iteration integer counters. This registry is the quantitative
// backbone underneath them: every hot layer (executor, thread pool,
// store, background writer, in-flight table, TCP server) updates named
// metrics cheap enough for its hot path, and anything — a test, the
// workload driver, or a remote GetMetrics request — can snapshot the
// whole registry as one deterministic JSON document.
//
// Design constraints, in order:
//   * hot-path cheap — Counter::Add is one relaxed atomic add on a
//     cache-line-private stripe (no mutex, no false sharing between
//     threads hammering the same counter); Histogram::Observe is two
//     relaxed adds;
//   * exact — counters never sample or approximate; histogram
//     percentiles are computed exactly from bucket counts by rank walk
//     (no sorting, no reservoir), quantized to the bucket upper bound;
//   * deterministic snapshots — metrics are emitted sorted by name with
//     integer-only values, so two identical runs produce byte-identical
//     JSON (the VirtualClock trace tests depend on the same property of
//     the trace layer).
#ifndef HELIX_OBS_METRICS_H_
#define HELIX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace helix {
class JsonWriter;

namespace obs {

/// Monotonically increasing counter, striped over cache lines so
/// concurrent writers on different cores do not bounce one line.
/// Value() folds the stripes (racy-exact: concurrent Adds before the
/// fold are included, later ones are not — the usual counter contract).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n = 1) {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  static size_t StripeIndex();

  Stripe stripes_[kStripes];
};

/// Last-writer-wins instantaneous value (queue depths, resident bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  /// Set + high-water-mark update (one relaxed store; the CAS loop runs
  /// only while the value actually exceeds the recorded maximum).
  void Set(int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

  /// Highest value ever Set (high-water mark).
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram. Buckets are defined by an ascending
/// list of inclusive upper bounds plus an implicit overflow bucket;
/// Observe is two relaxed atomic adds (bucket + sum), Percentile walks
/// the bucket counts — exact given the bucket resolution, never sorts.
class Histogram {
 public:
  /// `bounds` must be strictly ascending and non-empty. Values are
  /// clamped to >= 0 before bucketing.
  explicit Histogram(std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  int64_t Count() const { return count_.Value(); }
  int64_t Sum() const { return sum_.Value(); }

  /// Value at or below which a fraction `p` (0..1] of observations fall,
  /// quantized to the containing bucket's upper bound. The overflow
  /// bucket reports the largest finite bound (a saturation marker, not a
  /// measurement). Returns 0 when empty.
  int64_t Percentile(double p) const;

  /// Snapshot of (upper_bound, count) pairs, overflow bucket last with
  /// bound INT64_MAX. Racy-exact like Counter::Value.
  std::vector<std::pair<int64_t, int64_t>> Buckets() const;

  const std::vector<int64_t>& bounds() const { return bounds_; }

  /// The registry's default bucket bounds for latencies in microseconds:
  /// 1,2,5-progression from 1us to 100s (25 finite buckets + overflow).
  static const std::vector<int64_t>& DefaultLatencyBoundsMicros();

 private:
  const std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  Counter count_;
  Counter sum_;
};

/// Named metric registry. Get* registers on first use and returns a
/// stable pointer (instrument sites look up once and cache); names are
/// dot-separated `layer.metric` (see docs/ARCHITECTURE.md,
/// "Observability"). Registration takes a mutex; metric updates
/// afterwards are lock-free.
///
/// Thread safety: all methods are safe from any thread. Ownership: the
/// registry owns its metrics; pointers remain valid for the registry's
/// lifetime. A metric name identifies one kind: requesting an existing
/// name as a different kind returns nullptr (programming error,
/// surfaced loudly in tests).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` empty = DefaultLatencyBoundsMicros(). Bounds are fixed by
  /// the first registration; later calls ignore theirs.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<int64_t> bounds = {});

  /// One deterministic JSON document: metrics sorted by name inside
  /// "counters" / "gauges" / "histograms" objects; histograms carry
  /// count, sum, p50/p90/p99, and the non-empty buckets.
  std::string SnapshotJson() const;

  /// Appends the same snapshot into an existing writer (the workload
  /// driver embeds it in a larger document).
  void WriteSnapshot(JsonWriter* json) const;

  /// Process-wide shared instance for code without an explicit registry
  /// (never torn down). Prefer passing a registry explicitly — tests and
  /// services want isolated namespaces.
  static MetricsRegistry* Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace helix

#endif  // HELIX_OBS_METRICS_H_
