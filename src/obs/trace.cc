#include "obs/trace.h"

#include <algorithm>
#include <tuple>

#include "common/json.h"

namespace helix {
namespace obs {

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void TraceCollector::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[next_] = std::move(span);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceSpan> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest surviving span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

int64_t TraceCollector::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceCollector::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

std::string TraceCollector::ToChromeJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  int64_t dropped = DroppedCount();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return std::tie(a.start_micros, a.pid, a.tid, a.name) <
                            std::tie(b.start_micros, b.pid, b.tid, b.name);
                   });
  JsonWriter json;
  json.BeginObject();
  json.KV("displayTimeUnit", "ms");
  json.KV("droppedSpans", dropped);
  json.Key("traceEvents").BeginArray();
  for (const TraceSpan& span : spans) {
    json.BeginObject()
        .KV("name", span.name)
        .KV("cat", span.category.empty() ? "helix" : span.category)
        .KV("ph", "X")
        .KV("ts", span.start_micros)
        .KV("dur", span.duration_micros)
        .KV("pid", span.pid)
        .KV("tid", span.tid);
    if (!span.str_args.empty() || !span.int_args.empty()) {
      json.Key("args").BeginObject();
      for (const auto& [key, value] : span.str_args) {
        json.KV(key, value);
      }
      for (const auto& [key, value] : span.int_args) {
        json.KV(key, value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace obs
}  // namespace helix
