#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <thread>

#include "common/json.h"

namespace helix {
namespace obs {

size_t Counter::StripeIndex() {
  // One stripe per thread, stable for the thread's lifetime. Hashing the
  // thread id once into a thread_local is cheaper than hashing per Add
  // and spreads threads evenly enough for 8 stripes.
  thread_local const size_t stripe =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kStripes;
  return stripe;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)),
      buckets_(std::vector<std::atomic<int64_t>>(bounds_.size() + 1)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(int64_t value) {
  if (value < 0) {
    value = 0;  // time deltas; a clock hiccup must not underflow a bucket
  }
  // First bound >= value; bounds are inclusive upper limits.
  size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.Add(1);
  sum_.Add(value);
}

int64_t Histogram::Percentile(double p) const {
  // Snapshot the buckets once, then rank-walk. Exact with respect to the
  // snapshot: rank = ceil(p * count) observations fall at or below the
  // returned bound.
  std::vector<int64_t> counts(buckets_.size());
  int64_t total = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0;
  }
  p = std::min(1.0, std::max(0.0, p));
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(total));
  if (static_cast<double>(rank) < p * static_cast<double>(total)) {
    ++rank;  // ceil
  }
  rank = std::max<int64_t>(1, rank);
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

std::vector<std::pair<int64_t, int64_t>> Histogram::Buckets() const {
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    int64_t bound = i < bounds_.size() ? bounds_[i]
                                       : std::numeric_limits<int64_t>::max();
    out.emplace_back(bound, buckets_[i].load(std::memory_order_relaxed));
  }
  return out;
}

const std::vector<int64_t>& Histogram::DefaultLatencyBoundsMicros() {
  // 1-2-5 decades from 1us to 100s: fine enough that p50/p99 of both a
  // 30us store hit and a 2s cold iteration land in distinct buckets,
  // coarse enough that a histogram is 26 atomics.
  static const std::vector<int64_t> kBounds = {
      1,       2,       5,        10,       20,       50,
      100,     200,     500,      1000,     2000,     5000,
      10000,   20000,   50000,    100000,   200000,   500000,
      1000000, 2000000, 5000000,  10000000, 20000000, 50000000,
      100000000};
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) > 0 || histograms_.count(name) > 0) {
    return nullptr;  // name already registered as a different kind
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) > 0 || histograms_.count(name) > 0) {
    return nullptr;
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) > 0 || gauges_.count(name) > 0) {
    return nullptr;
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) {
      bounds = Histogram::DefaultLatencyBoundsMicros();
    }
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::WriteSnapshot(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json->KV(name, counter->Value());
  }
  json->EndObject();
  json->Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json->Key(name)
        .BeginObject()
        .KV("value", gauge->Value())
        .KV("max", gauge->Max())
        .EndObject();
  }
  json->EndObject();
  json->Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms_) {
    json->Key(name).BeginObject();
    json->KV("count", hist->Count())
        .KV("sum", hist->Sum())
        .KV("p50", hist->Percentile(0.5))
        .KV("p90", hist->Percentile(0.9))
        .KV("p99", hist->Percentile(0.99));
    json->Key("buckets").BeginArray();
    for (const auto& [bound, count] : hist->Buckets()) {
      if (count == 0) {
        continue;  // compact: empty buckets carry no information
      }
      json->BeginArray();
      if (bound == std::numeric_limits<int64_t>::max()) {
        json->String("inf");
      } else {
        json->Int(bound);
      }
      json->Int(count).EndArray();
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter json;
  json.BeginObject();
  json.KV("record", "helix_metrics");
  WriteSnapshot(&json);
  json.EndObject();
  return json.str();
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();  // never torn down
  return global;
}

}  // namespace obs
}  // namespace helix
