// Bounded span recorder emitting Chrome trace-event JSON.
//
// The executor (and anything else with interesting phases) records
// completed spans — name, category, caller-supplied start/duration in
// microseconds, pid/tid lanes, and a handful of string/int args — into a
// fixed-capacity ring buffer. ToChromeJson() renders the buffer as a
// Chrome trace-event document that loads directly in Perfetto or
// chrome://tracing.
//
// Timestamps are supplied by the *caller*, not read from a clock here:
// whoever owns the span also owns the Clock that timed it. Under
// VirtualClock the timestamps are fully deterministic, so two identical
// runs produce byte-identical trace JSON — the determinism test asserts
// exactly that. Output is sorted by (start, pid, tid, name) so even
// concurrent recording orders deterministically when timestamps do.
//
// The ring is bounded: when full, the oldest spans are overwritten and a
// dropped counter increments. Tooling treats a nonzero dropped count as
// "timeline is a suffix", and the CI checker skips sum-equality
// assertions in that case.
#ifndef HELIX_OBS_TRACE_H_
#define HELIX_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace helix {
namespace obs {

/// One completed ("X" phase) trace event. pid/tid are lane labels, not OS
/// identifiers: Helix uses pid = session id and tid = plan-node lane.
struct TraceSpan {
  std::string name;
  std::string category;
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
  uint64_t pid = 0;
  uint64_t tid = 0;
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, int64_t>> int_args;
};

/// Thread-safe bounded span buffer. Record() takes a mutex — span
/// recording happens at operator granularity (per plan node, per
/// request), orders of magnitude rarer than Counter::Add, so a mutex is
/// simpler and plenty cheap.
class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void Record(TraceSpan span);

  /// Spans currently buffered, oldest first.
  std::vector<TraceSpan> Snapshot() const;

  /// Spans overwritten because the ring was full.
  int64_t DroppedCount() const;
  size_t Size() const;
  size_t capacity() const { return capacity_; }

  void Clear();

  /// Chrome trace-event JSON document:
  ///   {"displayTimeUnit":"ms","droppedSpans":N,"traceEvents":[...]}
  /// Events are complete ("ph":"X") events with ts/dur in microseconds,
  /// sorted by (ts, pid, tid, name) for deterministic output.
  std::string ToChromeJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;              // overwrite position once full
  int64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace helix

#endif  // HELIX_OBS_TRACE_H_
