// Bernoulli naive Bayes over binary (presence/absence) sparse features.
//
// Provided as an alternative `modelType` for the Learner operator so ML
// iterations in the demo can swap model families (paper Section 3.2,
// "modify the workflow ... to optimize for prediction accuracy"). For
// binary features the NB decision rule is linear in the features, so the
// trained classifier is exported as a standard linear ModelData and shares
// the prediction path with logistic regression.
#ifndef HELIX_ML_NAIVE_BAYES_H_
#define HELIX_ML_NAIVE_BAYES_H_

#include <memory>

#include "common/result.h"
#include "dataflow/examples.h"
#include "dataflow/model.h"

namespace helix {
namespace ml {

struct NaiveBayesOptions {
  /// Laplace smoothing pseudo-count.
  double smoothing = 1.0;
};

/// Trains on examples with is_test == false, treating any non-zero feature
/// value as "present". Fails if a class is absent from the training data.
Result<std::shared_ptr<dataflow::ModelData>> TrainNaiveBayes(
    const dataflow::ExamplesData& data, const NaiveBayesOptions& opts);

}  // namespace ml
}  // namespace helix

#endif  // HELIX_ML_NAIVE_BAYES_H_
