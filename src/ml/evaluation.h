// Evaluation metrics for binary classification and span extraction.
//
// These back the `Reducer` / evaluation operators whose outputs feed the
// Metrics tab of the versioning tool (paper Figure 3). Evaluation
// iterations in the demo change which metrics are computed (green
// iterations in Figure 2).
#ifndef HELIX_ML_EVALUATION_H_
#define HELIX_ML_EVALUATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/text.h"

namespace helix {
namespace ml {

/// A (gold label, predicted probability) pair for one evaluation row.
struct ScoredLabel {
  double gold = 0.0;  // {0, 1}
  double prob = 0.0;  // predicted P(y=1)
};

/// Which metric families to compute (evaluation iterations toggle these).
struct BinaryMetricsOptions {
  double threshold = 0.5;
  bool accuracy = true;
  bool precision_recall_f1 = true;
  bool auc = false;
  bool log_loss = false;
  bool confusion_counts = false;
};

/// Computes the selected metrics over scored rows. Empty input yields an
/// InvalidArgument.
Result<std::map<std::string, double>> ComputeBinaryMetrics(
    const std::vector<ScoredLabel>& rows, const BinaryMetricsOptions& opts);

/// Exact span-level precision/recall/F1 between gold and predicted span
/// sets (a predicted span counts iff begin, end, and label all match a
/// gold span). The standard IE evaluation.
std::map<std::string, double> ComputeSpanMetrics(
    const std::vector<dataflow::Span>& gold,
    const std::vector<dataflow::Span>& predicted);

/// Aggregates span metrics over a document collection (micro-averaged).
std::map<std::string, double> ComputeCorpusSpanMetrics(
    const std::vector<std::vector<dataflow::Span>>& gold_per_doc,
    const std::vector<std::vector<dataflow::Span>>& pred_per_doc);

}  // namespace ml
}  // namespace helix

#endif  // HELIX_ML_EVALUATION_H_
