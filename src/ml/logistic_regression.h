// L2-regularized logistic regression trained with mini-batch-free SGD.
//
// This is the default `Learner` of the Census workflow (paper Figure 1a,
// line 16: `new Learner(modelType, regParam=0.1)`). Training is
// deterministic: example order is shuffled with a seeded RNG, so the same
// inputs and hyperparameters always produce bit-identical models — a
// requirement for HELIX's plan-invariance guarantees (optimized and
// unoptimized executions must produce identical results).
#ifndef HELIX_ML_LOGISTIC_REGRESSION_H_
#define HELIX_ML_LOGISTIC_REGRESSION_H_

#include <memory>

#include "common/result.h"
#include "dataflow/examples.h"
#include "dataflow/model.h"

namespace helix {
namespace ml {

struct LogisticRegressionOptions {
  /// L2 regularization strength (the paper's regParam).
  double reg_param = 0.1;
  double learning_rate = 0.1;
  int epochs = 20;
  /// Shuffle seed; same seed => bit-identical model.
  uint64_t seed = 42;
  /// Learning-rate decay per epoch: lr_t = lr / (1 + decay * epoch).
  double lr_decay = 0.05;
};

/// Trains on examples with is_test == false. Fails if there are no
/// training examples.
Result<std::shared_ptr<dataflow::ModelData>> TrainLogisticRegression(
    const dataflow::ExamplesData& data, const LogisticRegressionOptions& opts);

/// P(y=1 | x) under a trained linear model (logistic link).
double PredictProbability(const dataflow::ModelData& model,
                          const dataflow::SparseVector& features);

/// Raw linear score w . x + b.
double PredictScore(const dataflow::ModelData& model,
                    const dataflow::SparseVector& features);

}  // namespace ml
}  // namespace helix

#endif  // HELIX_ML_LOGISTIC_REGRESSION_H_
