#include "ml/perceptron.h"

#include <vector>

#include "common/rng.h"

namespace helix {
namespace ml {

Result<std::shared_ptr<dataflow::ModelData>> TrainAveragedPerceptron(
    const dataflow::ExamplesData& data, const PerceptronOptions& opts) {
  if (opts.epochs <= 0) {
    return Status::InvalidArgument("epochs must be positive");
  }
  std::vector<size_t> train_idx;
  for (size_t i = 0; i < static_cast<size_t>(data.num_examples()); ++i) {
    if (!data.example(static_cast<int64_t>(i)).is_test) {
      train_idx.push_back(i);
    }
  }
  if (train_idx.empty()) {
    return Status::InvalidArgument("no training examples (all is_test)");
  }

  const size_t dim = static_cast<size_t>(data.num_features());
  // Lazily-averaged perceptron: `acc` accumulates w * step so the average
  // can be recovered in O(dim) at the end.
  std::vector<double> weights(dim, 0.0);
  std::vector<double> acc(dim, 0.0);
  double bias = 0.0;
  double bias_acc = 0.0;
  double step = 1.0;
  int64_t mistakes = 0;

  Rng rng(opts.seed);
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(&train_idx);
    for (size_t i : train_idx) {
      const dataflow::Example& e = data.example(static_cast<int64_t>(i));
      double y = e.label > 0.5 ? 1.0 : -1.0;
      double score = e.features.Dot(weights) + bias;
      if (y * score <= opts.margin) {
        e.features.AddTo(&weights, y);
        bias += y;
        // Track the update moment for averaging.
        e.features.AddTo(&acc, y * step);
        bias_acc += y * step;
        ++mistakes;
        if (weights.size() > dim) {
          weights.resize(dim);
        }
        if (acc.size() > dim) {
          acc.resize(dim);
        }
      }
      step += 1.0;
    }
  }

  // Averaged weights: w_avg = w - acc / T.
  std::vector<double> averaged(dim, 0.0);
  for (size_t j = 0; j < dim; ++j) {
    averaged[j] = weights[j] - acc[j] / step;
  }
  double averaged_bias = bias - bias_acc / step;

  auto model = std::make_shared<dataflow::ModelData>(
      "averaged_perceptron", std::move(averaged), averaged_bias);
  model->SetInfo("epochs", opts.epochs);
  model->SetInfo("mistakes", static_cast<double>(mistakes));
  model->SetInfo("num_train", static_cast<double>(train_idx.size()));
  return model;
}

}  // namespace ml
}  // namespace helix
