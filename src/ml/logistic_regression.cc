#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace helix {
namespace ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

Result<std::shared_ptr<dataflow::ModelData>> TrainLogisticRegression(
    const dataflow::ExamplesData& data,
    const LogisticRegressionOptions& opts) {
  std::vector<size_t> train_idx;
  for (size_t i = 0; i < static_cast<size_t>(data.num_examples()); ++i) {
    if (!data.example(static_cast<int64_t>(i)).is_test) {
      train_idx.push_back(i);
    }
  }
  if (train_idx.empty()) {
    return Status::InvalidArgument("no training examples (all is_test)");
  }
  if (opts.epochs <= 0 || opts.learning_rate <= 0) {
    return Status::InvalidArgument(
        "epochs and learning_rate must be positive");
  }

  std::vector<double> weights(static_cast<size_t>(data.num_features()), 0.0);
  double bias = 0.0;
  Rng rng(opts.seed);
  double final_loss = 0.0;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(&train_idx);
    double lr = opts.learning_rate / (1.0 + opts.lr_decay * epoch);
    double loss = 0.0;
    // Per-example L2 shrink scaled by 1/n keeps regularization strength
    // independent of dataset size.
    double shrink =
        1.0 - lr * opts.reg_param / static_cast<double>(train_idx.size());
    if (shrink < 0.0) {
      shrink = 0.0;
    }
    for (size_t i : train_idx) {
      const dataflow::Example& e = data.example(static_cast<int64_t>(i));
      double p = Sigmoid(e.features.Dot(weights) + bias);
      double err = p - e.label;  // gradient of log-loss wrt score
      if (shrink != 1.0) {
        for (double& w : weights) {
          w *= shrink;
        }
      }
      e.features.AddTo(&weights, -lr * err);
      bias -= lr * err;
      double clamped = std::min(std::max(p, 1e-12), 1.0 - 1e-12);
      loss += e.label > 0.5 ? -std::log(clamped) : -std::log(1.0 - clamped);
    }
    final_loss = loss / static_cast<double>(train_idx.size());
  }

  // AddTo may have grown weights past num_features if indices were sparse;
  // clamp back to dictionary size for a canonical representation.
  weights.resize(static_cast<size_t>(data.num_features()), 0.0);
  auto model = std::make_shared<dataflow::ModelData>(
      "logistic_regression", std::move(weights), bias);
  model->SetInfo("train_loss", final_loss);
  model->SetInfo("epochs", opts.epochs);
  model->SetInfo("reg_param", opts.reg_param);
  model->SetInfo("num_train", static_cast<double>(train_idx.size()));
  return model;
}

double PredictScore(const dataflow::ModelData& model,
                    const dataflow::SparseVector& features) {
  return features.Dot(model.weights()) + model.bias();
}

double PredictProbability(const dataflow::ModelData& model,
                          const dataflow::SparseVector& features) {
  return Sigmoid(PredictScore(model, features));
}

}  // namespace ml
}  // namespace helix
