#include "ml/evaluation.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace helix {
namespace ml {

Result<std::map<std::string, double>> ComputeBinaryMetrics(
    const std::vector<ScoredLabel>& rows, const BinaryMetricsOptions& opts) {
  if (rows.empty()) {
    return Status::InvalidArgument("no rows to evaluate");
  }
  double tp = 0;
  double fp = 0;
  double tn = 0;
  double fn = 0;
  double log_loss = 0;
  for (const ScoredLabel& r : rows) {
    bool gold = r.gold > 0.5;
    bool pred = r.prob >= opts.threshold;
    if (gold && pred) {
      ++tp;
    } else if (!gold && pred) {
      ++fp;
    } else if (!gold && !pred) {
      ++tn;
    } else {
      ++fn;
    }
    double p = std::min(std::max(r.prob, 1e-12), 1.0 - 1e-12);
    log_loss += gold ? -std::log(p) : -std::log(1.0 - p);
  }
  double n = static_cast<double>(rows.size());

  std::map<std::string, double> out;
  if (opts.accuracy) {
    out["accuracy"] = (tp + tn) / n;
  }
  if (opts.precision_recall_f1) {
    double precision = tp + fp > 0 ? tp / (tp + fp) : 0.0;
    double recall = tp + fn > 0 ? tp / (tp + fn) : 0.0;
    double f1 = precision + recall > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    out["precision"] = precision;
    out["recall"] = recall;
    out["f1"] = f1;
  }
  if (opts.log_loss) {
    out["log_loss"] = log_loss / n;
  }
  if (opts.confusion_counts) {
    out["tp"] = tp;
    out["fp"] = fp;
    out["tn"] = tn;
    out["fn"] = fn;
  }
  if (opts.auc) {
    // Rank-sum (Mann-Whitney) AUC with midrank tie handling.
    std::vector<ScoredLabel> sorted = rows;
    std::sort(sorted.begin(), sorted.end(),
              [](const ScoredLabel& a, const ScoredLabel& b) {
                return a.prob < b.prob;
              });
    double pos = 0;
    double neg = 0;
    double rank_sum_pos = 0;
    size_t i = 0;
    while (i < sorted.size()) {
      size_t j = i;
      while (j < sorted.size() && sorted[j].prob == sorted[i].prob) {
        ++j;
      }
      double midrank =
          (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
      for (size_t k = i; k < j; ++k) {
        if (sorted[k].gold > 0.5) {
          rank_sum_pos += midrank;
          ++pos;
        } else {
          ++neg;
        }
      }
      i = j;
    }
    out["auc"] = (pos > 0 && neg > 0)
                     ? (rank_sum_pos - pos * (pos + 1) / 2.0) / (pos * neg)
                     : 0.5;
  }
  return out;
}

namespace {

void CountSpanMatches(const std::vector<dataflow::Span>& gold,
                      const std::vector<dataflow::Span>& predicted,
                      double* tp, double* fp, double* fn) {
  std::multiset<dataflow::Span> gold_set(gold.begin(), gold.end());
  for (const dataflow::Span& p : predicted) {
    auto it = gold_set.find(p);
    if (it != gold_set.end()) {
      *tp += 1;
      gold_set.erase(it);
    } else {
      *fp += 1;
    }
  }
  *fn += static_cast<double>(gold_set.size());
}

std::map<std::string, double> MetricsFromCounts(double tp, double fp,
                                                double fn) {
  double precision = tp + fp > 0 ? tp / (tp + fp) : 0.0;
  double recall = tp + fn > 0 ? tp / (tp + fn) : 0.0;
  double f1 = precision + recall > 0
                  ? 2 * precision * recall / (precision + recall)
                  : 0.0;
  return {{"span_precision", precision},
          {"span_recall", recall},
          {"span_f1", f1},
          {"span_tp", tp},
          {"span_fp", fp},
          {"span_fn", fn}};
}

}  // namespace

std::map<std::string, double> ComputeSpanMetrics(
    const std::vector<dataflow::Span>& gold,
    const std::vector<dataflow::Span>& predicted) {
  double tp = 0;
  double fp = 0;
  double fn = 0;
  CountSpanMatches(gold, predicted, &tp, &fp, &fn);
  return MetricsFromCounts(tp, fp, fn);
}

std::map<std::string, double> ComputeCorpusSpanMetrics(
    const std::vector<std::vector<dataflow::Span>>& gold_per_doc,
    const std::vector<std::vector<dataflow::Span>>& pred_per_doc) {
  double tp = 0;
  double fp = 0;
  double fn = 0;
  size_t n = std::min(gold_per_doc.size(), pred_per_doc.size());
  for (size_t i = 0; i < n; ++i) {
    CountSpanMatches(gold_per_doc[i], pred_per_doc[i], &tp, &fp, &fn);
  }
  // Documents present on only one side count entirely as misses/false
  // alarms.
  for (size_t i = n; i < gold_per_doc.size(); ++i) {
    fn += static_cast<double>(gold_per_doc[i].size());
  }
  for (size_t i = n; i < pred_per_doc.size(); ++i) {
    fp += static_cast<double>(pred_per_doc[i].size());
  }
  return MetricsFromCounts(tp, fp, fn);
}

}  // namespace ml
}  // namespace helix
