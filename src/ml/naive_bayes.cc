#include "ml/naive_bayes.h"

#include <cmath>
#include <vector>

namespace helix {
namespace ml {

Result<std::shared_ptr<dataflow::ModelData>> TrainNaiveBayes(
    const dataflow::ExamplesData& data, const NaiveBayesOptions& opts) {
  if (opts.smoothing <= 0) {
    return Status::InvalidArgument("smoothing must be positive");
  }
  const size_t dim = static_cast<size_t>(data.num_features());
  // count[c][j] = number of class-c training examples with feature j present.
  std::vector<double> count_pos(dim, 0.0);
  std::vector<double> count_neg(dim, 0.0);
  double n_pos = 0;
  double n_neg = 0;

  for (int64_t i = 0; i < data.num_examples(); ++i) {
    const dataflow::Example& e = data.example(i);
    if (e.is_test) {
      continue;
    }
    bool positive = e.label > 0.5;
    (positive ? n_pos : n_neg) += 1.0;
    std::vector<double>& counts = positive ? count_pos : count_neg;
    for (const auto& [idx, val] : e.features.entries()) {
      if (val != 0.0 && static_cast<size_t>(idx) < dim) {
        counts[static_cast<size_t>(idx)] += 1.0;
      }
    }
  }
  if (n_pos == 0 || n_neg == 0) {
    return Status::InvalidArgument(
        "naive Bayes requires both classes in the training data");
  }

  // Linear form: score(x) = log P(y=1)/P(y=0)
  //   + sum_j x_j * [logit(p_j|1) - logit(p_j|0)]
  //   + sum_j [log(1-p_j|1) - log(1-p_j|0)]   (absorbed into the bias)
  const double a = opts.smoothing;
  std::vector<double> weights(dim, 0.0);
  double bias = std::log(n_pos) - std::log(n_neg);
  for (size_t j = 0; j < dim; ++j) {
    double p1 = (count_pos[j] + a) / (n_pos + 2 * a);
    double p0 = (count_neg[j] + a) / (n_neg + 2 * a);
    weights[j] = std::log(p1 / (1 - p1)) - std::log(p0 / (1 - p0));
    bias += std::log(1 - p1) - std::log(1 - p0);
  }

  auto model = std::make_shared<dataflow::ModelData>(
      "naive_bayes", std::move(weights), bias);
  model->SetInfo("smoothing", a);
  model->SetInfo("num_train", n_pos + n_neg);
  return model;
}

}  // namespace ml
}  // namespace helix
