// Averaged perceptron for token-level structured prediction.
//
// The information-extraction application labels each token as inside or
// outside a person mention; consecutive positive tokens are decoded into
// spans (paper Section 3, "Information Extraction"). The averaged
// perceptron (Collins 2002) is the classic trainer for this setting and is
// exported as a linear ModelData, sharing the prediction path with the
// other learners.
#ifndef HELIX_ML_PERCEPTRON_H_
#define HELIX_ML_PERCEPTRON_H_

#include <memory>

#include "common/result.h"
#include "dataflow/examples.h"
#include "dataflow/model.h"

namespace helix {
namespace ml {

struct PerceptronOptions {
  int epochs = 10;
  uint64_t seed = 17;
  /// Margin for the update rule; 0 = vanilla perceptron.
  double margin = 0.0;
};

/// Trains an averaged perceptron on examples with is_test == false.
Result<std::shared_ptr<dataflow::ModelData>> TrainAveragedPerceptron(
    const dataflow::ExamplesData& data, const PerceptronOptions& opts);

}  // namespace ml
}  // namespace helix

#endif  // HELIX_ML_PERCEPTRON_H_
