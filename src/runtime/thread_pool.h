// Fixed-size worker pool over a FIFO task queue.
//
// The parallel DAG runtime (scheduler + async materializer) needs a place
// to run work; this is it. Deliberately minimal: a fixed number of worker
// threads started in the constructor, a mutex-protected deque of
// std::function tasks, and futures (via Submit) for callers that need a
// result or an exception channel. No work stealing, no priorities — DAG
// workloads here have at most a few dozen nodes in flight, so a single
// shared queue is never the bottleneck.
#ifndef HELIX_RUNTIME_THREAD_POOL_H_
#define HELIX_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace helix {
namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace runtime {

/// A fixed-size thread pool.
///
/// Thread safety: every public method is safe to call from any thread,
/// including from tasks running on the pool (a task may Schedule more
/// work). Ownership: the pool owns its worker threads; enqueued
/// std::functions are owned by the queue until executed.
///
/// Shutdown semantics: the destructor *drains* the queue — every task that
/// was accepted before destruction began runs to completion before the
/// workers join. A future obtained from Submit is therefore always
/// eventually satisfied (with a value or an exception). Tasks offered after
/// shutdown began are rejected: Schedule returns false, Submit returns a
/// future carrying a std::runtime_error.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (fixed at construction).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task. Returns false (task dropped) if the
  /// pool is shutting down. Tasks must not throw; use Submit when an
  /// exception channel is needed.
  bool Schedule(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` propagate through future::get(); so do error values such as
  /// Status returns.
  template <typename F>
  auto Submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    if (!Schedule([task]() { (*task)(); })) {
      // Rejected: satisfy the future with an error instead of leaving the
      // caller to block forever on a broken promise.
      std::promise<R> rejected;
      rejected.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool is shut down")));
      return rejected.get_future();
    }
    return future;
  }

  /// Blocks until the queue is empty and no worker is running a task.
  /// Tasks scheduled by other threads (or by running tasks) after this
  /// returns are not waited for.
  void WaitIdle();

  /// Number of tasks queued but not yet started (diagnostics).
  size_t QueueDepth() const;

  /// Registers `<prefix>.queue_depth` (gauge), `<prefix>.task_wait_micros`
  /// (histogram: enqueue → dequeue latency), and `<prefix>.tasks_run`
  /// (counter) in `registry` and starts updating them. Call before
  /// offering work; safe to call at most once per pool.
  void EnableTelemetry(obs::MetricsRegistry* registry,
                       const std::string& prefix = "pool");

 private:
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_micros = 0;  // steady-clock; 0 when telemetry is off
  };

  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task ready/shutdown
  std::condition_variable idle_cv_;  // signals WaitIdle: pool went idle
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;       // tasks currently executing
  bool shutdown_ = false;

  // Telemetry (null until EnableTelemetry; written under mu_, the metric
  // objects themselves are internally synchronized).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* task_wait_micros_ = nullptr;
  obs::Counter* tasks_run_ = nullptr;
};

}  // namespace runtime
}  // namespace helix

#endif  // HELIX_RUNTIME_THREAD_POOL_H_
