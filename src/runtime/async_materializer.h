// Asynchronous materialization pipeline.
//
// HELIX materializes intermediate results *while* the workflow executes
// (paper Section 2.3, the online constraint). Done inline, every
// store->Put stalls the operator that produced the result — serialization
// plus disk write sit on the critical path. The related-work challenges
// paper calls out overlapping computation with I/O as a key acceleration
// opportunity; this pipeline is that overlap: a single background writer
// thread owns the actual Put, compute threads only enqueue a (cheap,
// shared-payload) DataCollection handle and move on. Serialization also
// happens on the writer thread — once, into a size-reserved buffer that
// is moved (never copied) into the storage backend (see
// DataCollection::SerializeToString and StorageBackend::Write's
// move-aware overload) — so neither the envelope build nor a buffer copy
// ever lands on the compute path. Outcomes are collected and applied to
// execution records when the caller drains the pipeline at the end of
// the iteration.
//
// Multi-session sharing: one materializer may serve many concurrent
// sessions writing to one shared store (the service layer). Requests
// carry an `owner` tag, and Drain(owner) waits only for that owner's
// writes and returns only that owner's outcomes — one session finishing
// its iteration neither blocks on another session's (possibly endless)
// stream of requests nor steals its outcomes.
#ifndef HELIX_RUNTIME_ASYNC_MATERIALIZER_H_
#define HELIX_RUNTIME_ASYNC_MATERIALIZER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dataflow/data_collection.h"
#include "storage/store.h"

namespace helix {
namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace runtime {

/// Background writer that persists results to an IntermediateStore off the
/// compute critical path. The store must be thread-safe (it is — see
/// storage/store.h); the writer is a single thread, so writes retain
/// enqueue order.
///
/// Thread safety: Enqueue/Drain/Pending are safe from any thread;
/// multiple producers may enqueue concurrently. Ownership: the store is
/// borrowed and must outlive the materializer; Requests (and their
/// shared-payload DataCollections) are owned by the queue until written.
/// Failure modes: a failed Put never aborts the pipeline — the Status is
/// carried in the corresponding Outcome and the caller decides (the
/// executor demotes it to a skipped materialization).
class AsyncMaterializer {
 public:
  /// One pending materialization. `data` shares its payload with the
  /// executor's in-memory result — enqueueing copies a pointer, not data.
  struct Request {
    int node = -1;  // caller-defined tag (executor: DAG node id)
    uint64_t signature = 0;
    std::string node_name;
    dataflow::DataCollection data;
    int64_t iteration = 0;
    /// Producer's measured compute cost, forwarded to the store for
    /// eviction retention scoring (-1 = unknown).
    int64_t compute_micros = -1;
    /// Session tag for per-owner draining on a shared materializer
    /// (0 = the single-session default).
    uint64_t owner = 0;
    /// Payload bytes this request keeps alive while queued or writing.
    /// Filled by Enqueue from `data` (callers need not set it).
    int64_t size_bytes = 0;
  };

  /// Result of one attempted write.
  struct Outcome {
    int node = -1;
    uint64_t signature = 0;
    std::string node_name;
    Status status;             // Put's verdict (may be ResourceExhausted)
    int64_t write_micros = 0;  // measured write cost when status is OK
    uint64_t owner = 0;        // echo of Request::owner
  };

  /// Default Enqueue back-pressure threshold (see max_queue_bytes).
  static constexpr int64_t kDefaultMaxQueueBytes = 256LL << 20;

  /// `store` must outlive the materializer. `max_queue_bytes` bounds the
  /// payload bytes held alive by queued + in-flight requests: without a
  /// bound, a burst of large Puts pins every serialized buffer
  /// simultaneously — exactly the RAM spike memory planning schedules
  /// against. <= 0 disables the bound (legacy behavior).
  explicit AsyncMaterializer(storage::IntermediateStore* store,
                             int64_t max_queue_bytes = kDefaultMaxQueueBytes);

  /// Drains outstanding writes (all owners), then stops the writer thread.
  ~AsyncMaterializer();

  AsyncMaterializer(const AsyncMaterializer&) = delete;
  AsyncMaterializer& operator=(const AsyncMaterializer&) = delete;

  /// Queues a write. Returns immediately while queued payload bytes stay
  /// under max_queue_bytes; otherwise blocks the producer until the writer
  /// frees room (back-pressure: the producer re-enters its compute loop
  /// only as fast as the store absorbs writes). A request larger than the
  /// whole bound is admitted alone — when nothing is queued ahead of it —
  /// so it can never deadlock the pipeline.
  void Enqueue(Request request);

  /// Payload bytes currently held by queued + in-flight requests.
  int64_t QueuedBytes() const;

  /// Blocks until every write enqueued so far — any owner — has been
  /// attempted, then returns (and clears) their outcomes in enqueue order.
  /// Only meaningful for a single-owner materializer: under concurrent
  /// producers this waits for a momentarily empty queue.
  std::vector<Outcome> Drain();

  /// Blocks until every write enqueued so far *by `owner`* has been
  /// attempted, then returns (and clears) that owner's outcomes in
  /// enqueue order. Other owners' queued requests are untouched: they are
  /// neither waited for (beyond FIFO requests already ahead of `owner`'s
  /// last write) nor returned — their own Drain still sees them.
  std::vector<Outcome> Drain(uint64_t owner);

  /// Writes queued or executing right now (diagnostics).
  size_t Pending() const;

  /// Writes queued or executing right now for `owner` (diagnostics).
  size_t Pending(uint64_t owner) const;

  /// Registers `<prefix>.queue_depth` / `<prefix>.queue_bytes` (gauges),
  /// `<prefix>.write_micros` (histogram of successful Put latencies) and
  /// `<prefix>.writes_ok` / `<prefix>.writes_failed` (counters) in
  /// `registry` and starts updating them.
  void EnableTelemetry(obs::MetricsRegistry* registry,
                       const std::string& prefix = "materializer");

 private:
  void WriterLoop();

  storage::IntermediateStore* store_;
  const int64_t max_queue_bytes_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // wakes the writer
  std::condition_variable drained_cv_;  // wakes Drain (any flavor)
  std::condition_variable space_cv_;    // wakes Enqueue back-pressure waits
  std::deque<Request> queue_;
  int64_t queued_bytes_ = 0;  // payload bytes queued + in-flight
  std::vector<Outcome> outcomes_;
  // Queued + in-flight request count per owner; the entry is erased when
  // it reaches zero, so the map stays bounded by live owners.
  std::unordered_map<uint64_t, size_t> pending_per_owner_;
  bool writing_ = false;   // writer is executing a Put right now
  bool shutdown_ = false;

  // Telemetry (null until EnableTelemetry; pointers written under mu_).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* queue_bytes_ = nullptr;
  obs::Histogram* write_micros_ = nullptr;
  obs::Counter* writes_ok_ = nullptr;
  obs::Counter* writes_failed_ = nullptr;

  std::thread writer_;
};

}  // namespace runtime
}  // namespace helix

#endif  // HELIX_RUNTIME_ASYNC_MATERIALIZER_H_
