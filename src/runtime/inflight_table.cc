#include "runtime/inflight_table.h"

#include <utility>

namespace helix {
namespace runtime {

/// Shared state between one owner and its waiters. The table's map entry
/// and every outstanding Ticket hold a shared_ptr, so the slot outlives
/// both the Publish and any late Wait.
struct SignatureInflightTable::Ticket::Slot {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<dataflow::DataCollection> result =
      Status::Internal("in-flight result not published");
  std::atomic<int64_t>* shared_hits = nullptr;
};

Result<dataflow::DataCollection> SignatureInflightTable::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this]() { return slot_->done; });
  Result<dataflow::DataCollection> result = slot_->result;
  if (result.ok() && slot_->shared_hits != nullptr) {
    slot_->shared_hits->fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

SignatureInflightTable::Ticket SignatureInflightTable::Acquire(
    uint64_t signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(signature);
  if (it != slots_.end()) {
    return Ticket(/*owner=*/false, it->second);
  }
  auto slot = std::make_shared<Ticket::Slot>();
  slot->shared_hits = &shared_hits_;
  slots_.emplace(signature, slot);
  return Ticket(/*owner=*/true, std::move(slot));
}

void SignatureInflightTable::Publish(uint64_t signature,
                                     Result<dataflow::DataCollection> result) {
  std::shared_ptr<Ticket::Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(signature);
    if (it == slots_.end()) {
      return;  // tolerated misuse: publish without ownership
    }
    slot = it->second;
    slots_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(result);
    slot->done = true;
  }
  slot->cv.notify_all();
}

size_t SignatureInflightTable::InflightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace runtime
}  // namespace helix
