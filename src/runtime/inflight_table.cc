#include "runtime/inflight_table.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace helix {
namespace runtime {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Shared state between one owner and its waiters. The table's map entry
/// and every outstanding Ticket hold a shared_ptr, so the slot outlives
/// both the Publish and any late Wait.
struct SignatureInflightTable::Ticket::Slot {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<dataflow::DataCollection> result =
      Status::Internal("in-flight result not published");
  std::atomic<int64_t>* shared_hits = nullptr;
  // Telemetry, captured at Acquire like shared_hits (may be null).
  obs::Histogram* wait_micros = nullptr;
  obs::Counter* shared_hits_counter = nullptr;
};

Result<dataflow::DataCollection> SignatureInflightTable::Ticket::Wait() {
  const int64_t wait_start =
      slot_->wait_micros != nullptr ? SteadyNowMicros() : 0;
  std::unique_lock<std::mutex> lock(slot_->mu);
  slot_->cv.wait(lock, [this]() { return slot_->done; });
  Result<dataflow::DataCollection> result = slot_->result;
  if (slot_->wait_micros != nullptr) {
    slot_->wait_micros->Observe(SteadyNowMicros() - wait_start);
  }
  if (result.ok() && slot_->shared_hits != nullptr) {
    slot_->shared_hits->fetch_add(1, std::memory_order_relaxed);
  }
  if (result.ok() && slot_->shared_hits_counter != nullptr) {
    slot_->shared_hits_counter->Add(1);
  }
  return result;
}

SignatureInflightTable::Ticket SignatureInflightTable::Acquire(
    uint64_t signature) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(signature);
  if (it != slots_.end()) {
    return Ticket(/*owner=*/false, it->second);
  }
  auto slot = std::make_shared<Ticket::Slot>();
  slot->shared_hits = &shared_hits_;
  slot->wait_micros = share_wait_micros_;
  slot->shared_hits_counter = shared_hits_counter_;
  slots_.emplace(signature, slot);
  return Ticket(/*owner=*/true, std::move(slot));
}

void SignatureInflightTable::EnableTelemetry(obs::MetricsRegistry* registry,
                                             const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  share_wait_micros_ = registry->GetHistogram(prefix + ".share_wait_micros");
  shared_hits_counter_ = registry->GetCounter(prefix + ".shared_hits");
}

void SignatureInflightTable::Publish(uint64_t signature,
                                     Result<dataflow::DataCollection> result) {
  std::shared_ptr<Ticket::Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(signature);
    if (it == slots_.end()) {
      return;  // tolerated misuse: publish without ownership
    }
    slot = it->second;
    slots_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(result);
    slot->done = true;
  }
  slot->cv.notify_all();
}

size_t SignatureInflightTable::InflightCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace runtime
}  // namespace helix
