#include "runtime/async_materializer.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace helix {
namespace runtime {

AsyncMaterializer::AsyncMaterializer(storage::IntermediateStore* store,
                                     int64_t max_queue_bytes)
    : store_(store),
      max_queue_bytes_(max_queue_bytes),
      writer_([this]() { WriterLoop(); }) {}

AsyncMaterializer::~AsyncMaterializer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  writer_.join();
}

void AsyncMaterializer::Enqueue(Request request) {
  request.size_bytes = request.data.SizeBytes();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_queue_bytes_ > 0) {
      // Back-pressure: hold the producer until the writer frees room. A
      // request that alone exceeds the bound is admitted once the queue is
      // empty (queued_bytes_ == 0), so the wait always terminates.
      space_cv_.wait(lock, [this, &request]() {
        return shutdown_ || queued_bytes_ == 0 ||
               queued_bytes_ + request.size_bytes <= max_queue_bytes_;
      });
    }
    ++pending_per_owner_[request.owner];
    queued_bytes_ += request.size_bytes;
    queue_.push_back(std::move(request));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    if (queue_bytes_ != nullptr) {
      queue_bytes_->Set(queued_bytes_);
    }
  }
  work_cv_.notify_one();
}

int64_t AsyncMaterializer::QueuedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bytes_;
}

void AsyncMaterializer::EnableTelemetry(obs::MetricsRegistry* registry,
                                        const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ = registry->GetGauge(prefix + ".queue_depth");
  queue_bytes_ = registry->GetGauge(prefix + ".queue_bytes");
  queue_bytes_->Set(queued_bytes_);
  write_micros_ = registry->GetHistogram(prefix + ".write_micros");
  writes_ok_ = registry->GetCounter(prefix + ".writes_ok");
  writes_failed_ = registry->GetCounter(prefix + ".writes_failed");
}

std::vector<AsyncMaterializer::Outcome> AsyncMaterializer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this]() { return queue_.empty() && !writing_; });
  std::vector<Outcome> out = std::move(outcomes_);
  outcomes_.clear();
  return out;
}

std::vector<AsyncMaterializer::Outcome> AsyncMaterializer::Drain(
    uint64_t owner) {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this, owner]() {
    return pending_per_owner_.count(owner) == 0;
  });
  std::vector<Outcome> out;
  auto mine = [owner](const Outcome& o) { return o.owner == owner; };
  for (Outcome& o : outcomes_) {
    if (mine(o)) {
      out.push_back(std::move(o));
    }
  }
  outcomes_.erase(std::remove_if(outcomes_.begin(), outcomes_.end(), mine),
                  outcomes_.end());
  return out;
}

size_t AsyncMaterializer::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + (writing_ ? 1 : 0);
}

size_t AsyncMaterializer::Pending(uint64_t owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_per_owner_.find(owner);
  return it == pending_per_owner_.end() ? 0 : it->second;
}

void AsyncMaterializer::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      // Shutdown with a drained queue: exit. Pending requests are always
      // written first, so ~AsyncMaterializer never loses work.
      return;
    }
    Request request = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    // Snapshot telemetry pointers under mu_ — EnableTelemetry also writes
    // them under mu_, so the Put below can report without the lock.
    obs::Histogram* write_micros = write_micros_;
    obs::Counter* writes_ok = writes_ok_;
    obs::Counter* writes_failed = writes_failed_;
    lock.unlock();

    Outcome outcome;
    outcome.node = request.node;
    outcome.signature = request.signature;
    outcome.node_name = request.node_name;
    outcome.owner = request.owner;
    outcome.status =
        store_->Put(request.signature, request.node_name, request.data,
                    request.iteration, &outcome.write_micros,
                    request.compute_micros);
    if (outcome.status.ok()) {
      if (writes_ok != nullptr) {
        writes_ok->Add(1);
      }
      if (write_micros != nullptr) {
        write_micros->Observe(outcome.write_micros);
      }
    } else if (writes_failed != nullptr) {
      writes_failed->Add(1);
    }

    lock.lock();
    writing_ = false;
    queued_bytes_ -= request.size_bytes;
    if (queue_bytes_ != nullptr) {
      queue_bytes_->Set(queued_bytes_);
    }
    outcomes_.push_back(std::move(outcome));
    auto it = pending_per_owner_.find(request.owner);
    if (it != pending_per_owner_.end() && --it->second == 0) {
      pending_per_owner_.erase(it);
    }
    // Per-owner drains must observe every completed write, not just the
    // queue-empty edge; back-pressured producers wake on the freed bytes.
    drained_cv_.notify_all();
    space_cv_.notify_all();
  }
}

}  // namespace runtime
}  // namespace helix
