#include "runtime/async_materializer.h"

#include <utility>

namespace helix {
namespace runtime {

AsyncMaterializer::AsyncMaterializer(storage::IntermediateStore* store)
    : store_(store), writer_([this]() { WriterLoop(); }) {}

AsyncMaterializer::~AsyncMaterializer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
}

void AsyncMaterializer::Enqueue(Request request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(request));
  }
  work_cv_.notify_one();
}

std::vector<AsyncMaterializer::Outcome> AsyncMaterializer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this]() { return queue_.empty() && !writing_; });
  std::vector<Outcome> out = std::move(outcomes_);
  outcomes_.clear();
  return out;
}

size_t AsyncMaterializer::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + (writing_ ? 1 : 0);
}

void AsyncMaterializer::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      // Shutdown with a drained queue: exit. Pending requests are always
      // written first, so ~AsyncMaterializer never loses work.
      return;
    }
    Request request = std::move(queue_.front());
    queue_.pop_front();
    writing_ = true;
    lock.unlock();

    Outcome outcome;
    outcome.node = request.node;
    outcome.signature = request.signature;
    outcome.node_name = request.node_name;
    outcome.status =
        store_->Put(request.signature, request.node_name, request.data,
                    request.iteration, &outcome.write_micros,
                    request.compute_micros);

    lock.lock();
    writing_ = false;
    outcomes_.push_back(std::move(outcome));
    if (queue_.empty()) {
      drained_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace helix
