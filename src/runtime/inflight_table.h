// Per-signature in-flight computation table: block-and-share dedup.
//
// When many concurrent sessions iterate on the same workflow over one
// shared materialization store (the multi-tenant reuse direction of the
// Helix follow-up work, arXiv:1804.05892), two sessions frequently reach
// the same intermediate — same cumulative Merkle signature — at the same
// time, before either has materialized it. Without coordination both
// compute it: duplicated work exactly where reuse should win. This table
// closes that window: the first session to reach a signature becomes its
// *owner* and computes; later arrivals block on the owner's ticket and
// receive a shared handle to the finished result (DataCollection payloads
// are shared_ptr-backed, so sharing copies a pointer, not data).
//
// Deadlock freedom: ownership is held only while the owner actively
// executes one operator — owners never block on another signature while
// holding one (the executor acquires a ticket only after its parents are
// already available), so there is no hold-and-wait and no cycle.
#ifndef HELIX_RUNTIME_INFLIGHT_TABLE_H_
#define HELIX_RUNTIME_INFLIGHT_TABLE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/data_collection.h"

namespace helix {
namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

namespace runtime {

/// Coordination point for concurrent computations of the same signature.
///
/// Thread safety: all methods are safe from any thread. Ownership: the
/// table owns its slots; waiters keep slots alive through shared_ptrs, so
/// a Publish racing with late waiters is safe. Failure modes: the owner
/// must Publish exactly once — a result on success, the error Status on
/// failure. Waiters receiving an error fall back to computing locally
/// (correctness never depends on sharing).
class SignatureInflightTable {
 public:
  /// What Acquire tells the caller to do.
  class Ticket {
   public:
    /// True: caller computes the result and must Publish it (also on
    /// failure). False: another session is computing; call Wait.
    bool owner() const { return owner_; }

    /// Waiter-side: blocks until the owner publishes, then returns the
    /// shared result (or the owner's error). Must not be called by the
    /// owner.
    Result<dataflow::DataCollection> Wait();

   private:
    friend class SignatureInflightTable;
    struct Slot;
    Ticket(bool owner, std::shared_ptr<Slot> slot)
        : owner_(owner), slot_(std::move(slot)) {}

    bool owner_ = false;
    std::shared_ptr<Slot> slot_;
  };

  SignatureInflightTable() = default;
  SignatureInflightTable(const SignatureInflightTable&) = delete;
  SignatureInflightTable& operator=(const SignatureInflightTable&) = delete;

  /// Registers interest in `signature`. First caller per signature gets
  /// the owner ticket; everyone else a waiter ticket for the same slot.
  /// After the owner publishes, the signature is vacant again — a later
  /// Acquire starts a fresh ownership round (by then the result is
  /// normally in the store, so callers check the store first).
  Ticket Acquire(uint64_t signature);

  /// Owner-side: delivers the computation's outcome to every waiter and
  /// vacates the signature. Exactly one Publish per owner ticket.
  void Publish(uint64_t signature, Result<dataflow::DataCollection> result);

  /// Waits served a shared result since construction (the service's
  /// cross-session sharing metric).
  int64_t num_shared_hits() const {
    return shared_hits_.load(std::memory_order_relaxed);
  }

  /// Signatures currently being computed (diagnostics).
  size_t InflightCount() const;

  /// Registers `<prefix>.share_wait_micros` (histogram: time a waiter
  /// blocks on an owner) and `<prefix>.shared_hits` (counter) in
  /// `registry`. Applies to tickets acquired after the call.
  void EnableTelemetry(obs::MetricsRegistry* registry,
                       const std::string& prefix = "inflight");

 private:
  friend class Ticket;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Ticket::Slot>> slots_;
  std::atomic<int64_t> shared_hits_{0};

  // Telemetry (null until EnableTelemetry; written and read under mu_,
  // then carried by slots like shared_hits).
  obs::Histogram* share_wait_micros_ = nullptr;
  obs::Counter* shared_hits_counter_ = nullptr;
};

}  // namespace runtime
}  // namespace helix

#endif  // HELIX_RUNTIME_INFLIGHT_TABLE_H_
