#include "runtime/thread_pool.h"

namespace helix {
namespace runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      // shutdown_ is set and the queue is drained: exit. (While tasks
      // remain, shutdown keeps the workers running — drain semantics.)
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace helix
