#include "runtime/thread_pool.h"

#include <chrono>

#include "obs/metrics.h"

namespace helix {
namespace runtime {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::EnableTelemetry(obs::MetricsRegistry* registry,
                                 const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_depth_ = registry->GetGauge(prefix + ".queue_depth");
  task_wait_micros_ = registry->GetHistogram(prefix + ".task_wait_micros");
  tasks_run_ = registry->GetCounter(prefix + ".tasks_run");
}

bool ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return false;
    }
    Task task;
    task.fn = std::move(fn);
    if (task_wait_micros_ != nullptr) {
      task.enqueue_micros = SteadyNowMicros();
    }
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this]() { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      // shutdown_ is set and the queue is drained: exit. (While tasks
      // remain, shutdown keeps the workers running — drain semantics.)
      return;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    if (task_wait_micros_ != nullptr && task.enqueue_micros > 0) {
      task_wait_micros_->Observe(SteadyNowMicros() - task.enqueue_micros);
    }
    // Snapshot under mu_ — EnableTelemetry writes the pointer under mu_.
    obs::Counter* tasks_run = tasks_run_;
    lock.unlock();
    task.fn();
    if (tasks_run != nullptr) {
      tasks_run->Add(1);
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace helix
