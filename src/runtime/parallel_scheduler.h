// Dependency-driven parallel DAG execution.
//
// The HELIX executor (paper Section 2.3) runs the optimized workflow DAG;
// operators whose inputs do not depend on each other are independent and
// can run concurrently. This scheduler tracks a per-node count of
// unsatisfied dependencies and submits a node to the thread pool the
// moment its last parent resolves — the standard Kahn-style wavefront,
// but event-driven rather than level-synchronous, so a long-running node
// in one branch never stalls progress in another.
#ifndef HELIX_RUNTIME_PARALLEL_SCHEDULER_H_
#define HELIX_RUNTIME_PARALLEL_SCHEDULER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "graph/dag.h"
#include "runtime/thread_pool.h"

namespace helix {
namespace runtime {

/// Runs one node on a worker thread. A non-OK return aborts the schedule:
/// no new nodes are submitted and Run returns the first error observed.
using NodeRunner = std::function<Status(int node)>;

/// One-shot scheduler for a single DAG execution.
///
/// `active` selects the nodes to run; inactive nodes (pruned by the plan)
/// are treated as already satisfied, so an active node waits only on its
/// active parents. Callers guarantee — as the recomputation plan does by
/// feasibility — that every input an active node actually reads is either
/// produced by an active parent or otherwise available. A runner that can
/// reach an active ancestor *through* inactive nodes must be given an
/// explicit edge for it: the scheduler orders direct parents only, so
/// callers route such dependencies to the nearest active ancestors when
/// building the graph (as the executor does for its fallback path).
///
/// Memory ordering: all writes made by a node's runner happen-before the
/// runner of every dependent node (synchronized through the scheduler's
/// internal mutex), so runners may communicate results through plain
/// per-node slots without additional synchronization.
class ParallelDagScheduler {
 public:
  /// `dag` must outlive the scheduler (borrowed, not owned); `active`
  /// must have one flag per DAG node. The scheduler itself is one-shot:
  /// construct, Run once, discard.
  ParallelDagScheduler(const graph::Dag* dag, std::vector<bool> active);

  /// Optional release hook for memory planning (drop-after-last-use): the
  /// scheduler invokes it with a node id once every active dependent of
  /// that node has finished successfully — from then on no scheduled task
  /// will read the node's result, so the callback may free it. Invoked
  /// from worker threads, outside the scheduler lock; nodes with no
  /// active dependents are never reported (their results are typically
  /// outputs the caller wants kept). Must be set before Run.
  void SetOnLastDependentDone(std::function<void(int node)> callback) {
    on_last_dependent_done_ = std::move(callback);
  }

  /// Executes all active nodes on `pool` in dependency order; blocks until
  /// every submitted node finished. Returns OK when all active nodes ran
  /// successfully, otherwise the first error (descendants of a failed node
  /// are never started; unrelated in-flight nodes run to completion).
  Status Run(ThreadPool* pool, const NodeRunner& runner);

 private:
  void RunNode(ThreadPool* pool, const NodeRunner& runner, int node);

  const graph::Dag* dag_;
  std::vector<bool> active_;
  std::function<void(int node)> on_last_dependent_done_;

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<int> unsatisfied_;  // remaining active parents per node
  std::vector<int> pending_dependents_;  // unfinished active children
  int in_flight_ = 0;             // submitted but not finished
  int remaining_ = 0;             // active nodes not yet finished
  Status first_error_;
};

}  // namespace runtime
}  // namespace helix

#endif  // HELIX_RUNTIME_PARALLEL_SCHEDULER_H_
