#include "runtime/parallel_scheduler.h"

#include <utility>

namespace helix {
namespace runtime {

ParallelDagScheduler::ParallelDagScheduler(const graph::Dag* dag,
                                           std::vector<bool> active)
    : dag_(dag), active_(std::move(active)) {
  active_.resize(static_cast<size_t>(dag_->num_nodes()), false);
}

Status ParallelDagScheduler::Run(ThreadPool* pool, const NodeRunner& runner) {
  const int n = dag_->num_nodes();
  std::vector<int> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    unsatisfied_.assign(static_cast<size_t>(n), 0);
    pending_dependents_.assign(static_cast<size_t>(n), 0);
    remaining_ = 0;
    in_flight_ = 0;
    first_error_ = Status::OK();
    for (int i = 0; i < n; ++i) {
      if (!active_[static_cast<size_t>(i)]) {
        continue;
      }
      ++remaining_;
      for (graph::NodeId p : dag_->Parents(i)) {
        if (active_[static_cast<size_t>(p)]) {
          ++unsatisfied_[static_cast<size_t>(i)];
          ++pending_dependents_[static_cast<size_t>(p)];
        }
      }
    }
    if (remaining_ == 0) {
      return Status::OK();
    }
    for (int i = 0; i < n; ++i) {
      if (active_[static_cast<size_t>(i)] &&
          unsatisfied_[static_cast<size_t>(i)] == 0) {
        ready.push_back(i);
      }
    }
    in_flight_ = static_cast<int>(ready.size());
  }
  for (int node : ready) {
    RunNode(pool, runner, node);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this]() {
    return in_flight_ == 0 && (remaining_ == 0 || !first_error_.ok());
  });
  return first_error_;
}

void ParallelDagScheduler::RunNode(ThreadPool* pool, const NodeRunner& runner,
                                   int node) {
  // `runner` is owned by Run's caller; Run does not return while any
  // submitted task is in flight, so capturing the pointer is safe.
  const NodeRunner* runner_ptr = &runner;
  bool scheduled = pool->Schedule([this, pool, runner_ptr, node]() {
    Status s = (*runner_ptr)(node);
    std::vector<int> ready;
    std::vector<int> releasable;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!s.ok()) {
        if (first_error_.ok()) {
          first_error_ = s;
        }
      } else if (first_error_.ok()) {
        // Resolve this node for its children; newly satisfied ones start.
        for (graph::NodeId child : dag_->Children(node)) {
          if (active_[static_cast<size_t>(child)] &&
              --unsatisfied_[static_cast<size_t>(child)] == 0) {
            ready.push_back(child);
          }
        }
        // This node was the last unfinished dependent of each parent it
        // drains to zero: those parents' results are now dead to the
        // schedule and may be released.
        if (on_last_dependent_done_) {
          for (graph::NodeId p : dag_->Parents(node)) {
            if (active_[static_cast<size_t>(p)] &&
                --pending_dependents_[static_cast<size_t>(p)] == 0) {
              releasable.push_back(p);
            }
          }
        }
      }
      in_flight_ += static_cast<int>(ready.size());
    }
    // Release callbacks run outside the lock but before this node counts
    // as finished (in_flight_ still includes it), so Run cannot return —
    // and the caller cannot read result slots — while a release is
    // mid-write.
    for (int released : releasable) {
      on_last_dependent_done_(released);
    }
    for (int next : ready) {
      RunNode(pool, *runner_ptr, next);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      --remaining_;
      if (in_flight_ == 0 && (remaining_ == 0 || !first_error_.ok())) {
        done_cv_.notify_all();
      }
    }
  });
  if (!scheduled) {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (first_error_.ok()) {
      first_error_ = Status::Internal("thread pool rejected DAG node");
    }
    if (in_flight_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace helix
