// Quickstart: the HELIX edit-run loop in ~100 lines.
//
// Generates a small synthetic census dataset, runs the Census workflow of
// paper Figure 1a, then applies two human edits (add a feature; change the
// regularization) and shows how HELIX reuses materialized intermediates so
// later iterations cost a fraction of the first.
//
//   ./examples/quickstart [workspace_dir]
#include <cstdio>
#include <string>

#include "apps/census_app.h"
#include "baselines/baselines.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "core/plan_viz.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace {

int Fail(const helix::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace helix;  // NOLINT

  // --- Workspace & data ----------------------------------------------------
  std::string workspace;
  if (argc > 1) {
    workspace = argv[1];
  } else {
    auto tmp = MakeTempDir("helix-quickstart");
    if (!tmp.ok()) {
      return Fail(tmp.status());
    }
    workspace = tmp.value();
  }
  std::printf("workspace: %s\n", workspace.c_str());

  datagen::CensusGenOptions gen;
  gen.num_rows = 4000;
  std::string train_path = JoinPath(workspace, "census.train.csv");
  std::string test_path = JoinPath(workspace, "census.test.csv");
  Status wrote = datagen::WriteCensusFiles(gen, train_path, test_path);
  if (!wrote.ok()) {
    return Fail(wrote);
  }

  // --- Session ---------------------------------------------------------
  core::SessionOptions options = baselines::MakeSessionOptions(
      baselines::SystemKind::kHelix, JoinPath(workspace, "helix"),
      /*storage_budget_bytes=*/256LL << 20, SystemClock::Default());
  auto session = core::Session::Open(options);
  if (!session.ok()) {
    return Fail(session.status());
  }

  apps::CensusConfig config;
  config.train_path = train_path;
  config.test_path = test_path;

  // --- Iteration 0: initial program (Figure 1a) -------------------------
  auto v0 = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                     "initial version",
                                     core::ChangeCategory::kInitial);
  if (!v0.ok()) {
    return Fail(v0.status());
  }
  std::printf("\n=== iteration 0: initial run ===\n%s\n",
              core::RenderPlanAscii(v0->dag, v0->report).c_str());

  // --- Iteration 1: add a feature (pre-processing edit) ------------------
  config.use_marital_status = true;
  auto v1 = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                     "add marital_status feature",
                                     core::ChangeCategory::kDataPreprocessing);
  if (!v1.ok()) {
    return Fail(v1.status());
  }
  std::printf("=== iteration 1: add marital_status ===\n");
  std::printf("detected changes:\n%s%s\n",
              core::RenderDiff(v1->dag, v1->diff).c_str(),
              core::RenderPlanAscii(v1->dag, v1->report).c_str());

  // --- Iteration 2: change regularization (ML edit) ----------------------
  config.learner.reg_param = 0.01;
  auto v2 = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                     "lower regularization",
                                     core::ChangeCategory::kMachineLearning);
  if (!v2.ok()) {
    return Fail(v2.status());
  }
  std::printf("=== iteration 2: lower regularization ===\n%s\n",
              core::RenderPlanAscii(v2->dag, v2->report).c_str());

  // --- Iteration 3: another ML edit; upstream results now load from disk -
  config.learner.epochs = 30;
  auto v3 = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                     "more epochs",
                                     core::ChangeCategory::kMachineLearning);
  if (!v3.ok()) {
    return Fail(v3.status());
  }
  std::printf("=== iteration 3: more epochs (note loads from disk) ===\n%s\n",
              core::RenderPlanAscii(v3->dag, v3->report).c_str());

  // --- Version history (the paper's Versions/Metrics tabs) ---------------
  std::printf("=== version log ===\n%s\n",
              (*session)->versions().RenderLog().c_str());
  std::printf("=== accuracy trend ===\n%s\n",
              (*session)->versions().RenderMetricTrend("accuracy").c_str());

  double t0 = static_cast<double>(v0->report.total_micros) / 1e6;
  double t1 = static_cast<double>(v1->report.total_micros) / 1e6;
  double t2 = static_cast<double>(v2->report.total_micros) / 1e6;
  std::printf(
      "iteration runtimes: %.3fs -> %.3fs -> %.3fs\n"
      "the ML-only edit re-ran %d of %d operators.\n",
      t0, t1, t2, v2->report.num_computed,
      static_cast<int>(v2->report.nodes.size()));
  return 0;
}
