// The Information Extraction application (paper Section 3, application 2):
// person-mention extraction from synthetic news articles, iterated through
// feature-engineering, ML, and post-processing edits.
//
// Prints extracted mentions from a sample document after each feature
// iteration, showing extraction quality (span F1) improving as features
// are added while HELIX keeps iteration latency low through reuse.
//
//   ./examples/information_extraction [num_docs] [epochs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/ie_app.h"
#include "baselines/baselines.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "core/plan_viz.h"
#include "core/session.h"
#include "datagen/news_gen.h"

namespace {

int Fail(const helix::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Prints a document's text with predicted mentions bracketed.
void PrintAnnotated(const helix::dataflow::Document& doc,
                    const std::vector<helix::dataflow::Span>& spans) {
  std::string out;
  size_t pos = 0;
  for (const helix::dataflow::Span& s : spans) {
    if (static_cast<size_t>(s.begin) < pos) {
      continue;
    }
    out += doc.text.substr(pos, static_cast<size_t>(s.begin) - pos);
    out += "[";
    out += doc.text.substr(static_cast<size_t>(s.begin),
                           static_cast<size_t>(s.end - s.begin));
    out += "]";
    pos = static_cast<size_t>(s.end);
  }
  out += doc.text.substr(pos);
  std::printf("  %s\n", out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace helix;  // NOLINT

  int64_t num_docs = argc > 1 ? std::atoll(argv[1]) : 300;
  int epochs = argc > 2 ? std::atoi(argv[2]) : 8;

  auto workspace = MakeTempDir("helix-ie");
  if (!workspace.ok()) {
    return Fail(workspace.status());
  }
  std::string corpus_path = JoinPath(workspace.value(), "news.dat");
  datagen::NewsGenOptions gen;
  gen.num_docs = num_docs;
  Status wrote = datagen::WriteNewsCorpus(gen, corpus_path);
  if (!wrote.ok()) {
    return Fail(wrote);
  }
  std::printf("generated %lld news documents\n",
              static_cast<long long>(num_docs));

  core::SessionOptions options = baselines::MakeSessionOptions(
      baselines::SystemKind::kHelix, JoinPath(workspace.value(), "ws"),
      1LL << 30, SystemClock::Default());
  auto session = core::Session::Open(options);
  if (!session.ok()) {
    return Fail(session.status());
  }

  apps::IeConfig config;
  config.corpus_path = corpus_path;
  config.learner.epochs = epochs;

  for (const auto& step : apps::MakeIeIterationScript()) {
    step.mutate(&config);
    auto result = (*session)->RunIteration(apps::BuildIeWorkflow(config),
                                           step.description, step.category);
    if (!result.ok()) {
      return Fail(result.status());
    }
    const auto& metrics =
        (*session)->versions().version(result->version_id).metrics;
    std::printf(
        "iteration %-2d [%-10s] %-44s  %8s  span F1 %.3f  (computed %d, "
        "loaded %d, pruned %d)\n",
        result->version_id, core::ChangeCategoryToString(step.category),
        step.description.c_str(),
        HumanMicros(result->report.total_micros).c_str(),
        metrics.count("span_f1") ? metrics.at("span_f1") : 0.0,
        result->report.num_computed, result->report.num_loaded,
        result->report.num_pruned);

    // Show extractions from the last (held-out) document after feature
    // iterations.
    if (step.category == core::ChangeCategory::kDataPreprocessing) {
      auto mentions = result->report.outputs.find("mentions");
      if (mentions != result->report.outputs.end()) {
        auto decoded = mentions->second.AsText();
        auto corpus_file = ReadFileToString(corpus_path);
        if (decoded.ok() && corpus_file.ok()) {
          auto corpus =
              dataflow::DataCollection::DeserializeFromString(
                  corpus_file.value());
          if (corpus.ok()) {
            const dataflow::TextData* text = corpus.value().AsText().value();
            int64_t last = text->num_docs() - 1;
            std::printf("  sample extraction (doc %lld):\n",
                        static_cast<long long>(last));
            PrintAnnotated(text->doc(last),
                           decoded.value()->doc(last).spans);
          }
        }
      }
    }
  }

  std::printf("\n=== span F1 across versions ===\n%s\n",
              (*session)->versions().RenderMetricTrend("span_f1").c_str());
  std::printf("cumulative runtime: %s\n",
              HumanMicros((*session)->cumulative_micros()).c_str());

  (void)RemoveDirRecursively(workspace.value());
  return 0;
}
