// The full Census application (paper Figure 1a) driven through the
// 10-iteration editing script used in Figure 2(b), printing per-iteration
// plans, the change-tracker diff, and the final version history — the
// command-line equivalent of the paper's demo walkthrough (Section 3.2).
//
//   ./examples/census_workflow [num_rows] [epochs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/census_app.h"
#include "baselines/baselines.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "core/plan_viz.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace {

int Fail(const helix::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace helix;  // NOLINT

  int64_t num_rows = argc > 1 ? std::atoll(argv[1]) : 10000;
  int epochs = argc > 2 ? std::atoi(argv[2]) : 20;

  auto workspace = MakeTempDir("helix-census");
  if (!workspace.ok()) {
    return Fail(workspace.status());
  }
  std::string train = JoinPath(workspace.value(), "census.train.csv");
  std::string test = JoinPath(workspace.value(), "census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = num_rows;
  Status wrote = datagen::WriteCensusFiles(gen, train, test);
  if (!wrote.ok()) {
    return Fail(wrote);
  }
  std::printf("generated %lld census rows under %s\n",
              static_cast<long long>(num_rows), workspace.value().c_str());

  core::SessionOptions options = baselines::MakeSessionOptions(
      baselines::SystemKind::kHelix, JoinPath(workspace.value(), "ws"),
      1LL << 30, SystemClock::Default());
  auto session = core::Session::Open(options);
  if (!session.ok()) {
    return Fail(session.status());
  }

  apps::CensusConfig config;
  config.train_path = train;
  config.test_path = test;
  config.learner.epochs = epochs;

  // Show the DSL rendering of the initial program (Figure 1a analogue).
  std::printf("\n=== workflow program (DSL view) ===\n%s\n",
              apps::BuildCensusWorkflow(config).ToDsl().c_str());

  for (const auto& step : apps::MakeCensusIterationScript()) {
    step.mutate(&config);
    auto result = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                           step.description, step.category);
    if (!result.ok()) {
      return Fail(result.status());
    }
    std::printf("=== iteration %d [%s]: %s ===\n", result->version_id,
                core::ChangeCategoryToString(step.category),
                step.description.c_str());
    if (result->version_id > 0) {
      std::printf("changes detected:\n%s",
                  core::RenderDiff(result->dag, result->diff).c_str());
    }
    std::printf("%s\n",
                core::RenderPlanAscii(result->dag, result->report).c_str());
  }

  const core::VersionManager& versions = (*session)->versions();
  std::printf("=== version history ===\n%s\n", versions.RenderLog().c_str());
  std::printf("=== accuracy across versions (Metrics tab) ===\n%s\n",
              versions.RenderMetricTrend("accuracy").c_str());
  auto best = versions.BestVersion("accuracy");
  if (best.ok()) {
    std::printf("best version by accuracy: %d (%s)\n", best.value(),
                versions.version(best.value()).description.c_str());
  }
  std::printf("cumulative runtime across all iterations: %s\n",
              HumanMicros((*session)->cumulative_micros()).c_str());

  (void)RemoveDirRecursively(workspace.value());
  return 0;
}
