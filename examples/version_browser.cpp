// Headless counterpart of the paper's versioning and visualization tool
// (Section 3.1, Figure 3): runs a short editing session, then exercises
// every "tab" of the GUI — the commit-log Versions view, the Metrics trend
// plots, point-to-point version comparison with git-like diffs, and the
// JSON export a real frontend would consume.
//
//   ./examples/version_browser
#include <cstdio>
#include <string>

#include "apps/census_app.h"
#include "baselines/baselines.h"
#include "common/file_util.h"
#include "core/plan_viz.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace {

int Fail(const helix::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  using namespace helix;  // NOLINT

  auto workspace = MakeTempDir("helix-versions");
  if (!workspace.ok()) {
    return Fail(workspace.status());
  }
  std::string train = JoinPath(workspace.value(), "train.csv");
  std::string test = JoinPath(workspace.value(), "test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = 6000;
  Status wrote = datagen::WriteCensusFiles(gen, train, test);
  if (!wrote.ok()) {
    return Fail(wrote);
  }

  core::SessionOptions options = baselines::MakeSessionOptions(
      baselines::SystemKind::kHelix, JoinPath(workspace.value(), "ws"),
      1LL << 30, SystemClock::Default());
  auto session = core::Session::Open(options);
  if (!session.ok()) {
    return Fail(session.status());
  }

  apps::CensusConfig config;
  config.train_path = train;
  config.test_path = test;
  config.learner.epochs = 15;

  for (const auto& step : apps::MakeCensusIterationScript()) {
    step.mutate(&config);
    auto result = (*session)->RunIteration(apps::BuildCensusWorkflow(config),
                                           step.description, step.category);
    if (!result.ok()) {
      return Fail(result.status());
    }
  }

  const core::VersionManager& versions = (*session)->versions();

  // --- Versions tab: commit-log-style browsing --------------------------
  std::printf("=== Versions tab ===\n%s\n", versions.RenderLog().c_str());

  // Shortcuts: latest and best version (paper: "shortcuts to the version
  // with the best evaluation metrics as well as the latest version").
  std::printf("latest version: %d\n", versions.LatestId());
  auto best = versions.BestVersion("accuracy");
  if (best.ok()) {
    std::printf("best accuracy:  version %d (%s), accuracy=%.4f\n\n",
                best.value(),
                versions.version(best.value()).description.c_str(),
                versions.version(best.value()).metrics.at("accuracy"));
  }

  // --- Metrics tab: trend plots -----------------------------------------
  std::printf("=== Metrics tab ===\n");
  for (const char* metric : {"accuracy", "f1"}) {
    std::printf("%s\n", versions.RenderMetricTrend(metric).c_str());
  }

  // --- Comparison view: select two versions, diff code + DAG -------------
  // Compare the best version against its parent, as an attendee would
  // after spotting a jump in the Metrics plot (paper Figure 3 selects
  // versions 2 and 3 in the Accuracy plot).
  int to = best.ok() ? best.value() : versions.LatestId();
  int from = versions.version(to).parent_id >= 0
                 ? versions.version(to).parent_id
                 : to;
  auto diff = versions.Diff(from, to);
  if (diff.ok()) {
    std::printf("=== Comparison view: version %d vs %d ===\n", from, to);
    auto print_list = [](const char* label,
                         const std::vector<std::string>& names) {
      for (const std::string& n : names) {
        std::printf("  %s %s\n", label, n.c_str());
      }
    };
    print_list("+", diff->added);
    print_list("-", diff->removed);
    print_list("~", diff->changed);
    print_list("@", diff->rewired);
    if (diff->Empty()) {
      std::printf("  (no structural changes)\n");
    }
    std::printf("metric deltas:\n");
    for (const auto& [name, value] : versions.version(to).metrics) {
      auto prev = versions.version(from).metrics.find(name);
      if (prev != versions.version(from).metrics.end()) {
        std::printf("  %-12s %+.4f (%.4f -> %.4f)\n", name.c_str(),
                    value - prev->second, prev->second, value);
      }
    }
    std::printf("\n");
  }

  // --- JSON export (what a web frontend would fetch) ----------------------
  std::string json = versions.ExportJson();
  std::string json_path = JoinPath(workspace.value(), "versions.json");
  Status saved = WriteStringToFile(json_path, json);
  std::printf("full history exported: %zu bytes of JSON (%s)\n", json.size(),
              saved.ok() ? "written" : saved.ToString().c_str());

  (void)RemoveDirRecursively(workspace.value());
  return 0;
}
