#!/usr/bin/env python3
"""CI validator for Helix telemetry artifacts.

Checks that a workload_driver run's --metrics-out / --trace-out files are
well-formed and actually populated (a plausible-looking but empty snapshot
should fail the build), and optionally that benchmark summaries
(BENCH_<name>.json) were written.

Usage:
  check_telemetry.py --metrics=FILE --trace=FILE [--require-server]
                     [--bench-dir=DIR --expect-bench=name1,name2,...]

Exit code 0 on success; prints every failed expectation otherwise.
"""

import argparse
import json
import os
import sys

FAILURES = []


def expect(condition, message):
    if not condition:
        FAILURES.append(message)


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        expect(False, "%s: cannot load %s: %s" % (what, path, e))
        return None


def gauge_high_water(gauges, name):
    """A gauge's lifetime max (entries serialize as {value, max})."""
    entry = gauges.get(name)
    if isinstance(entry, dict):
        return entry.get("max", 0)
    return entry if isinstance(entry, (int, float)) else 0


def check_metrics(path, require_server):
    doc = load_json(path, "metrics")
    if doc is None:
        return
    expect(doc.get("record") == "helix_metrics",
           "metrics: record != helix_metrics")
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    histograms = doc.get("histograms", {})

    # The storage layer saw traffic: a census run must both miss (first
    # iteration) and hit or write the store.
    expect(counters.get("store.misses", 0) > 0,
           "metrics: store.misses not populated")
    expect(counters.get("store.hits", 0) > 0 or
           counters.get("store.bytes_written", 0) > 0,
           "metrics: store saw neither hits nor writes")
    expect("store.bytes" in gauges, "metrics: store.bytes gauge missing")

    # The executor ran iterations.
    expect(counters.get("executor.iterations", 0) > 0,
           "metrics: executor.iterations not populated")

    # The columnar kernels ran and reported which ISA path served them
    # (simd.<kernel>.<isa> counters, folded in at snapshot time). A census
    # run always filters/gathers, so at least one kernel must have fired.
    expect(any(name.startswith("simd.") and value > 0
               for name, value in counters.items()),
           "metrics: no simd.* kernel counters populated")

    # Memory accounting: the executor publishes its planned peak and
    # recompute overhead every iteration (0 is fine — absence is not),
    # and the async writer reports the payload bytes its queue pins.
    expect("executor.peak_planned_bytes" in gauges,
           "metrics: executor.peak_planned_bytes gauge missing")
    expect(gauge_high_water(gauges, "executor.peak_planned_bytes") > 0,
           "metrics: executor.peak_planned_bytes never set")
    expect("executor.recompute_extra_micros" in gauges,
           "metrics: executor.recompute_extra_micros gauge missing")
    expect(gauge_high_water(gauges, "executor.peak_resident_bytes") > 0,
           "metrics: executor.peak_resident_bytes never set")
    expect("materializer.queue_bytes" in gauges,
           "metrics: materializer.queue_bytes gauge missing")

    # The pool queued work.
    wait = histograms.get("pool.task_wait_micros", {})
    expect(wait.get("count", 0) > 0,
           "metrics: pool.task_wait_micros not populated")
    expect("pool.queue_depth" in gauges,
           "metrics: pool.queue_depth gauge missing")

    for name, h in histograms.items():
        buckets = h.get("buckets", [])
        bucket_total = sum(c for _, c in buckets)
        expect(bucket_total == h.get("count", -1),
               "metrics: histogram %s bucket counts (%d) != count (%d)"
               % (name, bucket_total, h.get("count", -1)))

    if require_server:
        for phase in ("decode", "queue", "execute", "reply_write"):
            h = histograms.get("server.%s_micros" % phase, {})
            expect(h.get("count", 0) > 0,
                   "metrics: server.%s_micros not populated" % phase)
        expect(counters.get("server.requests", 0) > 0,
               "metrics: server.requests not populated")
        expect(counters.get("server.frames_in", 0) > 0 and
               counters.get("server.bytes_in", 0) > 0,
               "metrics: server traffic counters not populated")
        # The backpressure / reply-classification counters are registered
        # unconditionally at server start, so they must be present (as
        # non-negative integers) even when a healthy run never bumps them.
        for name in ("server.requests_shed", "server.reply_drops",
                     "server.reply_timeouts"):
            value = counters.get(name)
            expect(isinstance(value, int) and value >= 0,
                   "metrics: %s missing or malformed (%r)" % (name, value))


def check_trace(path):
    doc = load_json(path, "trace")
    if doc is None:
        return
    expect(doc.get("displayTimeUnit") == "ms",
           "trace: displayTimeUnit != ms")
    events = doc.get("traceEvents", [])
    expect(len(events) > 0, "trace: no events")
    node_outcomes = {"computed": 0, "loaded": 0, "shared": 0, "pruned": 0,
                     "sliced": 0}
    iteration_totals = {"computed": 0, "loaded": 0, "shared": 0, "pruned": 0}
    for e in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            expect(key in e, "trace: event missing %s: %r" % (key, e))
        expect(e.get("ph") == "X", "trace: non-complete event %r" % e)
        args = e.get("args", {})
        if e.get("cat") == "node":
            outcome = args.get("outcome")
            expect(outcome in node_outcomes,
                   "trace: node span with bad outcome %r" % outcome)
            if outcome in node_outcomes:
                node_outcomes[outcome] += 1
        elif e.get("cat") == "iteration":
            for key in iteration_totals:
                iteration_totals[key] += args.get(key, 0)
    expect(sum(node_outcomes.values()) > 0, "trace: no node spans")

    # Self-consistency: per-node outcome tags must sum to the iteration
    # spans' counters. Only meaningful when the ring dropped nothing —
    # with drops the surviving node spans are a suffix of the timeline.
    if doc.get("droppedSpans", 0) == 0:
        # The report's "loaded" counts every kLoad node, shared waits
        # included; the span outcome splits those out as "shared".
        observed = {
            "computed": node_outcomes["computed"],
            "loaded": node_outcomes["loaded"] + node_outcomes["shared"],
            "shared": node_outcomes["shared"],
            "pruned": node_outcomes["pruned"] + node_outcomes["sliced"],
        }
        expect(observed == iteration_totals,
               "trace: node outcomes %r != iteration counters %r"
               % (observed, iteration_totals))
    else:
        print("trace: droppedSpans=%d, skipping sum check"
              % doc["droppedSpans"])


def check_bench_summaries(bench_dir, names):
    for name in names:
        path = os.path.join(bench_dir, "BENCH_%s.json" % name)
        if not os.path.exists(path):
            expect(False, "bench: %s missing" % path)
            continue
        doc = load_json(path, "bench %s" % name)
        if doc is None:
            continue
        expect(doc.get("bench") == name,
               "bench %s: name mismatch %r" % (name, doc.get("bench")))
        records = doc.get("records")
        expect(isinstance(records, list),
               "bench %s: records is not a list" % name)
        if name.startswith("trace_") and isinstance(records, list):
            # Per-scenario trace baselines must carry the two headline
            # numbers (throughput + store hit rate), actually measured.
            expect(len(records) > 0, "bench %s: no records" % name)
            for r in records:
                expect(r.get("throughput_iters_per_sec", 0) > 0,
                       "bench %s: throughput_iters_per_sec not populated"
                       % name)
                expect("hit_rate" in r,
                       "bench %s: hit_rate missing" % name)
                expect(r.get("events", 0) > 0,
                       "bench %s: events not populated" % name)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--metrics")
    parser.add_argument("--trace")
    parser.add_argument("--require-server", action="store_true")
    parser.add_argument("--bench-dir")
    parser.add_argument("--expect-bench", default="")
    args = parser.parse_args()

    if args.metrics:
        check_metrics(args.metrics, args.require_server)
    if args.trace:
        check_trace(args.trace)
    if args.bench_dir and args.expect_bench:
        check_bench_summaries(args.bench_dir,
                              [n for n in args.expect_bench.split(",") if n])

    if FAILURES:
        for f in FAILURES:
            print("FAIL:", f, file=sys.stderr)
        return 1
    print("telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
