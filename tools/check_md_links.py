#!/usr/bin/env python3
"""Fails when any *.md file in the repo contains a broken relative link.

Checks inline markdown links `[text](target)` whose target is a relative
path (external URLs and pure #anchors are skipped; a #fragment on a
relative path is stripped before the existence check). Run from anywhere;
paths resolve against the repo root (this script's parent directory).
"""
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", "build", ".github"}
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")


def md_files():
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS or part.startswith("build")
                   for part in path.relative_to(REPO_ROOT).parts):
            yield path


def main():
    broken = []
    for md in md_files():
        text = md.read_text(encoding="utf-8", errors="replace")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (md.parent / rel).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{md.relative_to(REPO_ROOT)}:{line}: {target}")
    if broken:
        print("broken relative links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"checked {sum(1 for _ in md_files())} markdown files: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
