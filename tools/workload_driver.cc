// Multi-user workload driver for the session service.
//
// Two modes sharing one binary:
//
// Legacy app mode (--app=census|ie|mixed) simulates K users iterating
// concurrently on the paper's applications with randomized think time
// between edits, against one of three targets:
//
//   * one shared in-process SessionService (--shared=1, the default):
//     cross-session reuse on;
//   * fully isolated per-user services (--shared=0): the baseline;
//   * a remote helix_server over TCP (--remote=host:port): one
//     HelixClient connection per user, workflows shipped as specs and
//     resolved server-side — the networked equivalent of the shared mode.
//
// Trace mode (--scenario=NAME or --trace=FILE) drives the workload layer
// instead: a seeded generated scenario (src/workload/generator.h) or a
// recorded .htrc trace file is replayed through src/workload/replay.h
// against the in-process service or a --remote server. The same flags
// select the target in both modes.
//
// Emits one "json,{...}" line per user and one aggregate line with
// throughput, p50/p99 iteration latency, and the store hit rate — the
// service-layer counterpart of the paper's cumulative-runtime plots. The
// aggregate metrics are computed identically for all targets, so a remote
// run is directly comparable to an in-process one; bench_net runs that
// comparison under controlled (matched-thread) conditions in one process,
// and tests/net_test.cc + tests/trace_test.cc pin the underlying
// determinism exactly.
//
// Usage:
//   workload_driver [--users=4] [--iterations=10] [--app=census|ie|mixed]
//                   [--shared=1] [--threads=0] [--think-ms=20]
//                   [--rows=8000] [--docs=80] [--budget-mb=1024]
//                   [--memory-budget-mb=0] [--seed=1]
//                   [--remote=host:port] [--shutdown-remote=0]
//                   [--metrics-out=FILE] [--trace-out=FILE]
//   workload_driver --scenario=localized|sweep|features|refresh|stream
//                   [--seed=N] [--users=2] [--iterations=8] [--rows=2000]
//                   [--docs=24] [--stream-batch-rows=400]
//                   [--refresh-period=3] [--think-ms=0] ...
//   workload_driver --trace=FILE ...
//
// Trace-mode extras:
//   --record=FILE       re-record what actually ran as a .htrc trace
//                       (paths rebased back to ${WS}, so the recording is
//                       portable and self-contained like a generated one)
//   --summary-out=FILE  deterministic replay summary JSON: per-iteration
//                       output fingerprints + counter totals, no wall
//                       times — byte-identical across runs when replayed
//                       with --virtual-clock (CI diffs record-then-replay
//                       summaries for equality)
//   --sequential=1      strict trace order on one thread
//   --virtual-clock=1   deterministic virtual time: implies sequential,
//                       pins the materialization policy, think time
//                       advances the clock instead of sleeping
//   --think-scale=X     multiplier on recorded think times (default 0)
//
// --shutdown-remote=1 sends the server a Shutdown RPC after the run (the
// CI smoke step uses this to assert a clean server exit).
//
// --metrics-out / --trace-out dump the run's telemetry after the users
// finish: the service metrics snapshot (JSON) and the span buffer as
// Chrome trace-event JSON (open in Perfetto / chrome://tracing). In
// remote mode they come from the server via GetMetrics/GetTrace RPCs
// (before any shutdown); in-process they cover the shared service, or
// the first per-user service when --shared=0.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/census_app.h"
#include "apps/ie_app.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/file_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/materialization.h"
#include "datagen/census_gen.h"
#include "dataflow/simd.h"
#include "datagen/news_gen.h"
#include "net/app_specs.h"
#include "net/client.h"
#include "service/session_service.h"
#include "workload/generator.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace helix {
namespace tools {
namespace {

struct DriverConfig {
  int users = 4;
  int iterations = 10;
  std::string app = "census";  // census | ie | mixed
  bool shared = true;
  int threads = 0;
  int think_ms = 20;
  int64_t rows = 8000;
  int64_t docs = 80;
  int64_t budget_mb = 1024;
  /// Per-iteration RAM budget for in-flight intermediates (0 = off): the
  /// executor plans drops/recomputes to keep its resident peak under it.
  int64_t memory_budget_mb = 0;
  uint64_t seed = 1;
  std::string remote_host;  // empty = in-process
  int remote_port = 0;
  bool shutdown_remote = false;
  std::string metrics_out;  // empty = no metrics dump
  std::string trace_out;    // empty = no trace dump
  /// Every latency/wall measurement goes through this clock, so tests and
  /// deterministic replays can substitute a virtual one.
  Clock* clock = SystemClock::Default();

  // --- Trace mode ----------------------------------------------------------
  std::string scenario;   // non-empty = generate + replay this scenario
  std::string trace_in;   // non-empty = replay this .htrc file
  std::string record_out;  // non-empty = re-record the replay here
  std::string summary_out;  // non-empty = deterministic summary JSON
  bool sequential = false;
  bool virtual_clock = false;
  double think_scale = 0.0;
  int64_t stream_batch_rows = 400;
  int refresh_period = 3;
};

struct UserResult {
  std::string app;
  std::vector<int64_t> latencies_micros;
  service::SessionCounters counters;
};

// One user's target: an in-process ServiceSession or a remote session
// behind a HelixClient. Either way, RunCensus/RunIe executes one
// iteration and counters() snapshots the session's bookkeeping.
class UserTarget {
 public:
  UserTarget(service::SessionService* svc, service::ServiceSession* session)
      : svc_(svc), session_(session) {}
  UserTarget(net::HelixClient* client, uint64_t remote_session)
      : client_(client), remote_session_(remote_session) {}

  Status RunCensus(const apps::CensusConfig& config,
                   const std::string& description,
                   core::ChangeCategory category) {
    if (client_ != nullptr) {
      auto result = client_->RunIteration(
          remote_session_, net::MakeCensusSpec(config), description,
          category);
      return result.ok() ? Status::OK() : result.status();
    }
    // Through the shared pool, like a real service frontend would.
    auto result = svc_->SubmitIteration(session_,
                                        apps::BuildCensusWorkflow(config),
                                        description, category)
                      .get();
    return result.ok() ? Status::OK() : result.status();
  }

  Status RunIe(const apps::IeConfig& config, const std::string& description,
               core::ChangeCategory category) {
    if (client_ != nullptr) {
      auto result = client_->RunIteration(
          remote_session_, net::MakeIeSpec(config), description, category);
      return result.ok() ? Status::OK() : result.status();
    }
    auto result = svc_->SubmitIteration(session_,
                                        apps::BuildIeWorkflow(config),
                                        description, category)
                      .get();
    return result.ok() ? Status::OK() : result.status();
  }

  service::SessionCounters counters() {
    if (client_ != nullptr) {
      return bench::ValueOrDie(client_->GetCounters(remote_session_),
                               "remote counters");
    }
    return session_->counters();
  }

 private:
  service::SessionService* svc_ = nullptr;
  service::ServiceSession* session_ = nullptr;
  net::HelixClient* client_ = nullptr;
  uint64_t remote_session_ = 0;
};

// One user's life: M iterations of their app's scripted edits (cycling
// past the script end), thinking between runs.
void DriveUser(UserTarget* target, const DriverConfig& config,
               const std::string& app, const std::string& train,
               const std::string& test, const std::string& corpus,
               uint64_t user_seed, UserResult* out) {
  Rng rng(user_seed);
  Clock* clock = config.clock;
  out->app = app;
  if (app == "census") {
    apps::CensusConfig census;
    census.train_path = train;
    census.test_path = test;
    census.learner.epochs = 6;
    auto script = apps::MakeCensusIterationScript();
    for (int i = 0; i < config.iterations; ++i) {
      const auto& step = script[static_cast<size_t>(i) % script.size()];
      step.mutate(&census);
      if (config.think_ms > 0 && i > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            rng.NextInt(0, 2 * config.think_ms)));
      }
      int64_t start = clock->NowMicros();
      bench::CheckOk(target->RunCensus(census, step.description,
                                       step.category),
                     "census iteration");
      out->latencies_micros.push_back(clock->NowMicros() - start);
    }
  } else {
    apps::IeConfig ie;
    ie.corpus_path = corpus;
    ie.learner.epochs = 3;
    auto script = apps::MakeIeIterationScript();
    for (int i = 0; i < config.iterations; ++i) {
      const auto& step = script[static_cast<size_t>(i) % script.size()];
      step.mutate(&ie);
      if (config.think_ms > 0 && i > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            rng.NextInt(0, 2 * config.think_ms)));
      }
      int64_t start = clock->NowMicros();
      bench::CheckOk(target->RunIe(ie, step.description, step.category),
                     "ie iteration");
      out->latencies_micros.push_back(clock->NowMicros() - start);
    }
  }
  out->counters = target->counters();
}

std::unique_ptr<service::SessionService> OpenService(
    const DriverConfig& config, const std::string& workspace) {
  service::ServiceOptions options;
  options.workspace_dir = workspace;
  options.storage_budget_bytes = config.budget_mb << 20;
  options.memory_budget_bytes = config.memory_budget_mb << 20;
  options.num_threads = config.threads > 0 ? config.threads : config.users;
  return bench::ValueOrDie(service::SessionService::Open(options),
                           "open service");
}

void Run(const DriverConfig& config) {
  const bool remote = !config.remote_host.empty();
  bench::TempWorkspace workspace("helix-workload");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  std::string corpus = workspace.Path("news.dat");
  bool uses_census = config.app != "ie";
  bool uses_ie = config.app != "census";
  if (uses_census) {
    datagen::CensusGenOptions gen;
    gen.num_rows = config.rows;
    bench::CheckOk(datagen::WriteCensusFiles(gen, train, test),
                   "census datagen");
  }
  if (uses_ie) {
    datagen::NewsGenOptions gen;
    gen.num_docs = config.docs;
    bench::CheckOk(datagen::WriteNewsCorpus(gen, corpus), "news datagen");
  }

  // Shared mode: one service for everyone. Isolated mode: one service per
  // user — same machinery, nothing shared, the multi-tenant ablation.
  // Remote mode: no local service at all; one client connection per user
  // against one server (inherently shared, data files read server-side —
  // the driver and server must see the same filesystem).
  std::vector<std::unique_ptr<service::SessionService>> services;
  std::vector<std::unique_ptr<net::HelixClient>> clients;
  std::vector<std::unique_ptr<UserTarget>> targets;
  for (int u = 0; u < config.users; ++u) {
    if (remote) {
      clients.push_back(bench::ValueOrDie(
          net::HelixClient::Connect(config.remote_host, config.remote_port),
          "connect"));
      uint64_t session = bench::ValueOrDie(
          clients.back()->OpenSession("user-" + std::to_string(u)),
          "open remote session");
      targets.push_back(
          std::make_unique<UserTarget>(clients.back().get(), session));
      continue;
    }
    if (services.empty() || !config.shared) {
      services.push_back(OpenService(
          config, workspace.Path(config.shared
                                     ? std::string("ws-shared")
                                     : "ws-user-" + std::to_string(u))));
    }
    service::SessionService* svc = services.back().get();
    service::ServiceSession* session = bench::ValueOrDie(
        svc->CreateSession("user-" + std::to_string(u)), "create session");
    targets.push_back(std::make_unique<UserTarget>(svc, session));
  }

  std::vector<UserResult> results(static_cast<size_t>(config.users));
  std::vector<std::thread> users;
  int64_t wall_start = config.clock->NowMicros();
  for (int u = 0; u < config.users; ++u) {
    std::string app = config.app == "mixed"
                          ? (u % 2 == 0 ? "census" : "ie")
                          : config.app;
    users.emplace_back([&, app, u]() {
      DriveUser(targets[static_cast<size_t>(u)].get(), config, app, train,
                test, corpus, config.seed * 7919 + static_cast<uint64_t>(u),
                &results[static_cast<size_t>(u)]);
    });
  }
  for (std::thread& t : users) {
    t.join();
  }
  int64_t wall_micros = config.clock->NowMicros() - wall_start;

  // Per-user lines + aggregate.
  std::vector<int64_t> all_latencies;
  service::SessionCounters totals;
  for (int u = 0; u < config.users; ++u) {
    const UserResult& r = results[static_cast<size_t>(u)];
    std::vector<int64_t> sorted = r.latencies_micros;
    std::sort(sorted.begin(), sorted.end());
    all_latencies.insert(all_latencies.end(), sorted.begin(), sorted.end());
    JsonWriter json;
    json.BeginObject()
        .KV("record", "workload_user")
        .KV("user", static_cast<int64_t>(u))
        .KV("app", r.app)
        .KV("iterations", r.counters.iterations)
        .KV("p50_ms", bench::PercentileSorted(sorted, 0.5) / 1e3)
        .KV("p99_ms", bench::PercentileSorted(sorted, 0.99) / 1e3)
        .KV("num_computed", r.counters.num_computed)
        .KV("num_loaded", r.counters.num_loaded)
        .KV("num_shared", r.counters.num_shared)
        .KV("cross_session_loads", r.counters.cross_session_loads)
        .KV("saved_ms", static_cast<double>(r.counters.saved_micros) / 1e3)
        .EndObject();
    bench::PrintJsonLine(json);
    totals.iterations += r.counters.iterations;
    totals.num_computed += r.counters.num_computed;
    totals.num_loaded += r.counters.num_loaded;
    totals.num_shared += r.counters.num_shared;
    totals.cross_session_loads += r.counters.cross_session_loads;
    totals.saved_micros += r.counters.saved_micros;
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  int64_t reuse_events = totals.num_loaded;  // includes shared waits
  int64_t cross_session = totals.cross_session_loads + totals.num_shared;
  double hit_rate =
      totals.num_computed + reuse_events > 0
          ? static_cast<double>(reuse_events) /
                static_cast<double>(totals.num_computed + reuse_events)
          : 0;
  double cross_rate =
      totals.num_computed + reuse_events > 0
          ? static_cast<double>(cross_session) /
                static_cast<double>(totals.num_computed + reuse_events)
          : 0;
  JsonWriter json;
  json.BeginObject()
      .KV("record", "workload_aggregate")
      .KV("app", config.app)
      .KV("users", static_cast<int64_t>(config.users))
      .KV("iterations_per_user", static_cast<int64_t>(config.iterations))
      .KV("shared_store", config.shared || remote)
      .KV("remote", remote)
      .KV("think_ms", static_cast<int64_t>(config.think_ms))
      .KV("wall_ms", static_cast<double>(wall_micros) / 1e3)
      .KV("throughput_iters_per_sec",
          wall_micros > 0 ? static_cast<double>(totals.iterations) * 1e6 /
                                static_cast<double>(wall_micros)
                          : 0)
      .KV("p50_ms", bench::PercentileSorted(all_latencies, 0.5) / 1e3)
      .KV("p99_ms", bench::PercentileSorted(all_latencies, 0.99) / 1e3)
      .KV("num_computed", totals.num_computed)
      .KV("num_loaded", totals.num_loaded)
      .KV("num_shared", totals.num_shared)
      .KV("cross_session_loads", totals.cross_session_loads)
      .KV("hit_rate", hit_rate)
      .KV("cross_session_hit_rate", cross_rate)
      .KV("saved_ms", static_cast<double>(totals.saved_micros) / 1e3)
      .EndObject();
  bench::PrintJsonLine(json);

  // Telemetry dumps come before any remote shutdown: GetMetrics/GetTrace
  // need a live server.
  if (!config.metrics_out.empty() || !config.trace_out.empty()) {
    std::string metrics_json;
    std::string trace_json;
    if (remote) {
      metrics_json = bench::ValueOrDie(clients[0]->GetMetricsJson(),
                                       "remote metrics");
      trace_json = bench::ValueOrDie(clients[0]->GetTraceJson(),
                                     "remote trace");
    } else {
      // Kernel invocation counters live in simd-layer globals; fold the
      // deltas in so the dump shows which ISA path did the work. (The
      // remote path's GetMetrics handler does the same server-side.)
      dataflow::simd::FoldCountersInto(services[0]->metrics());
      metrics_json = services[0]->metrics()->SnapshotJson();
      trace_json = services[0]->trace()->ToChromeJson();
    }
    if (!config.metrics_out.empty()) {
      bench::CheckOk(WriteStringToFile(config.metrics_out, metrics_json),
                     "write metrics");
      std::printf("metrics written to %s\n", config.metrics_out.c_str());
    }
    if (!config.trace_out.empty()) {
      bench::CheckOk(WriteStringToFile(config.trace_out, trace_json),
                     "write trace");
    }
  }

  if (remote && config.shutdown_remote) {
    bench::CheckOk(clients[0]->Shutdown(), "remote shutdown");
    std::printf("remote server acknowledged shutdown\n");
  }
}

// --- Trace mode -----------------------------------------------------------

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void RunTrace(const DriverConfig& config) {
  const bool remote = !config.remote_host.empty();

  // 1. The trace: generated from a scenario or read from a file. A file
  // carries its own provenance (header params), so replay regenerates the
  // exact data it was generated/recorded against.
  workload::Trace trace;
  if (!config.trace_in.empty()) {
    trace = bench::ValueOrDie(workload::ReadTraceFile(config.trace_in),
                              "read trace");
  } else {
    workload::ScenarioConfig scenario;
    scenario.scenario = config.scenario;
    scenario.seed = config.seed;
    scenario.users = config.users;
    scenario.iterations = config.iterations;
    scenario.rows = config.rows;
    scenario.docs = config.docs;
    scenario.stream_batch_rows = config.stream_batch_rows;
    scenario.refresh_period = config.refresh_period;
    scenario.think_ms = config.think_ms;
    trace = bench::ValueOrDie(workload::GenerateTrace(scenario),
                              "generate trace");
  }

  // 2. Materialize the data the trace references.
  bench::TempWorkspace workspace("helix-trace");
  std::string data_dir = workspace.Path("data");
  bench::CheckOk(workload::MaterializeTraceData(trace, data_dir),
                 "materialize trace data");

  // 3. Replay.
  VirtualClock virtual_clock;
  Clock* clock = config.virtual_clock ? &virtual_clock : config.clock;
  workload::TraceRecorder recorder;
  recorder.SetHeader(trace.header);
  workload::ReplayOptions replay;
  replay.workspace_dir = workspace.Path("ws-replay");
  replay.storage_budget_bytes = config.budget_mb << 20;
  replay.memory_budget_bytes = config.memory_budget_mb << 20;
  replay.threads = config.threads > 0 ? config.threads : config.users;
  replay.clock = clock;
  if (config.virtual_clock) {
    // Measured costs are all zero on a virtual clock; pin the policy so
    // planner decisions cannot depend on leftover cost-model state.
    replay.mat_policy = std::make_shared<core::AlwaysMaterializePolicy>();
  }
  replay.remote_host = config.remote_host;
  replay.remote_port = config.remote_port;
  replay.sequential = config.sequential;
  replay.think_scale = config.think_scale;
  replay.data_dir = data_dir;
  replay.recorder = config.record_out.empty() ? nullptr : &recorder;
  workload::ReplayResult result =
      bench::ValueOrDie(workload::ReplayTrace(trace, replay), "replay");

  // 4. Per-user lines + aggregate, same shape as app mode.
  uint32_t num_users = 0;
  for (const workload::IterationRecord& record : result.records) {
    num_users = std::max(num_users, record.user + 1);
  }
  std::vector<int64_t> all_latencies;
  int64_t total_pruned = 0;
  for (uint32_t u = 0; u < num_users; ++u) {
    std::vector<int64_t> sorted;
    int64_t computed = 0;
    int64_t loaded = 0;
    int64_t shared = 0;
    int64_t pruned = 0;
    int64_t iterations = 0;
    for (const workload::IterationRecord& record : result.records) {
      if (record.user != u) {
        continue;
      }
      sorted.push_back(record.latency_micros);
      computed += record.num_computed;
      loaded += record.num_loaded;
      shared += record.num_shared;
      pruned += record.num_pruned;
      ++iterations;
    }
    total_pruned += pruned;
    std::sort(sorted.begin(), sorted.end());
    all_latencies.insert(all_latencies.end(), sorted.begin(), sorted.end());
    JsonWriter json;
    json.BeginObject()
        .KV("record", "trace_user")
        .KV("user", static_cast<int64_t>(u))
        .KV("iterations", iterations)
        .KV("p50_ms", bench::PercentileSorted(sorted, 0.5) / 1e3)
        .KV("p99_ms", bench::PercentileSorted(sorted, 0.99) / 1e3)
        .KV("num_computed", computed)
        .KV("num_loaded", loaded)
        .KV("num_shared", shared)
        .KV("num_pruned", pruned)
        .EndObject();
    bench::PrintJsonLine(json);
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  JsonWriter json;
  json.BeginObject()
      .KV("record", "trace_aggregate")
      .KV("scenario", trace.header.scenario)
      .KV("seed", trace.header.seed)
      .KV("users", static_cast<int64_t>(num_users))
      .KV("events", static_cast<int64_t>(result.records.size()))
      .KV("remote", remote)
      .KV("sequential", config.sequential || config.virtual_clock)
      .KV("virtual_clock", config.virtual_clock)
      .KV("wall_ms", static_cast<double>(result.wall_micros) / 1e3)
      .KV("throughput_iters_per_sec",
          result.wall_micros > 0
              ? static_cast<double>(result.records.size()) * 1e6 /
                    static_cast<double>(result.wall_micros)
              : 0)
      .KV("p50_ms", bench::PercentileSorted(all_latencies, 0.5) / 1e3)
      .KV("p99_ms", bench::PercentileSorted(all_latencies, 0.99) / 1e3)
      .KV("num_computed", result.totals.num_computed)
      .KV("num_loaded", result.totals.num_loaded)
      .KV("num_shared", result.totals.num_shared)
      .KV("num_pruned", total_pruned)
      .KV("hit_rate", result.hit_rate())
      .KV("trace_fingerprint", Hex64(workload::TraceFingerprint(trace)))
      .KV("run_fingerprint", Hex64(result.run_fingerprint))
      .EndObject();
  bench::PrintJsonLine(json);

  // 5. Deterministic summary: everything in here is stable across replays
  // of the same trace under --virtual-clock (no wall times, no paths), so
  // CI can assert record-then-replay equality with a byte diff.
  if (!config.summary_out.empty()) {
    JsonWriter summary;
    summary.BeginObject()
        .KV("record", "trace_summary")
        .KV("scenario", trace.header.scenario)
        .KV("seed", trace.header.seed)
        .KV("users", static_cast<int64_t>(num_users))
        .KV("events", static_cast<int64_t>(result.records.size()))
        .KV("trace_fingerprint", Hex64(workload::TraceFingerprint(trace)))
        .KV("run_fingerprint", Hex64(result.run_fingerprint))
        .KV("num_computed", result.totals.num_computed)
        .KV("num_loaded", result.totals.num_loaded)
        .KV("num_shared", result.totals.num_shared)
        .KV("hit_rate", result.hit_rate());
    summary.Key("iterations").BeginArray();
    for (const workload::IterationRecord& record : result.records) {
      summary.BeginObject()
          .KV("user", static_cast<int64_t>(record.user))
          .KV("index", static_cast<int64_t>(record.index))
          .KV("fingerprint", Hex64(record.fingerprint))
          .KV("num_computed", record.num_computed)
          .KV("num_loaded", record.num_loaded)
          .KV("num_shared", record.num_shared)
          .KV("num_pruned", record.num_pruned)
          .EndObject();
    }
    summary.EndArray().EndObject();
    bench::CheckOk(
        WriteStringToFile(config.summary_out, summary.str() + "\n"),
        "write summary");
    std::printf("summary written to %s\n", config.summary_out.c_str());
  }

  // 6. Re-recorded trace: rebase the materialized paths back to ${WS} so
  // the recording is as portable as a generated trace (replaying it
  // re-materializes identical data from the preserved header).
  if (!config.record_out.empty()) {
    workload::Trace recorded = recorder.Snapshot();
    recorded = workload::RebaseTracePaths(recorded, data_dir,
                                          workload::kWorkspacePlaceholder);
    bench::CheckOk(workload::WriteTraceFile(config.record_out, recorded),
                   "write recorded trace");
    std::printf("recorded %zu events to %s\n", recorded.events.size(),
                config.record_out.c_str());
  }

  if (!config.metrics_out.empty()) {
    bench::CheckOk(WriteStringToFile(config.metrics_out, result.metrics_json),
                   "write metrics");
    std::printf("metrics written to %s\n", config.metrics_out.c_str());
  }
  if (!config.trace_out.empty()) {
    bench::CheckOk(WriteStringToFile(config.trace_out, result.trace_json),
                   "write trace");
  }

  if (remote && config.shutdown_remote) {
    auto client = bench::ValueOrDie(
        net::HelixClient::Connect(config.remote_host, config.remote_port),
        "connect for shutdown");
    bench::CheckOk(client->Shutdown(), "remote shutdown");
    std::printf("remote server acknowledged shutdown\n");
  }
}

}  // namespace
}  // namespace tools
}  // namespace helix

int main(int argc, char** argv) {
  helix::tools::DriverConfig config;
  bool think_ms_set = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t v;
    if ((v = helix::bench::FlagValue(arg, "--users")) >= 0) {
      config.users = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--iterations")) >= 0) {
      config.iterations = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--shared")) >= 0) {
      config.shared = v != 0;
    } else if ((v = helix::bench::FlagValue(arg, "--threads")) >= 0) {
      config.threads = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--think-ms")) >= 0) {
      config.think_ms = static_cast<int>(v);
      think_ms_set = true;
    } else if ((v = helix::bench::FlagValue(arg, "--rows")) >= 0) {
      config.rows = v;
    } else if ((v = helix::bench::FlagValue(arg, "--docs")) >= 0) {
      config.docs = v;
    } else if ((v = helix::bench::FlagValue(arg, "--memory-budget-mb")) >=
               0) {
      config.memory_budget_mb = v;
    } else if ((v = helix::bench::FlagValue(arg, "--budget-mb")) >= 0) {
      config.budget_mb = v;
    } else if ((v = helix::bench::FlagValue(arg, "--seed")) >= 0) {
      config.seed = static_cast<uint64_t>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--shutdown-remote")) >= 0) {
      config.shutdown_remote = v != 0;
    } else if ((v = helix::bench::FlagValue(arg, "--sequential")) >= 0) {
      config.sequential = v != 0;
    } else if ((v = helix::bench::FlagValue(arg, "--virtual-clock")) >= 0) {
      config.virtual_clock = v != 0;
    } else if ((v = helix::bench::FlagValue(arg,
                                            "--stream-batch-rows")) >= 0) {
      config.stream_batch_rows = v;
    } else if ((v = helix::bench::FlagValue(arg, "--refresh-period")) >= 0) {
      config.refresh_period = static_cast<int>(v);
    } else if (std::strncmp(arg, "--think-scale=", 14) == 0) {
      config.think_scale = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--app=", 6) == 0) {
      config.app = arg + 6;
    } else if (std::strncmp(arg, "--scenario=", 11) == 0) {
      config.scenario = arg + 11;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      config.trace_in = arg + 8;
    } else if (std::strncmp(arg, "--record=", 9) == 0) {
      config.record_out = arg + 9;
    } else if (std::strncmp(arg, "--summary-out=", 14) == 0) {
      config.summary_out = arg + 14;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      config.metrics_out = arg + 14;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      config.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--remote=", 9) == 0) {
      auto parts = helix::Split(arg + 9, ':');
      int64_t port = 0;
      if (parts.size() != 2 || !helix::ParseInt64(parts[1], &port) ||
          port <= 0 || port > 65535) {
        std::fprintf(stderr, "--remote must be host:port\n");
        return 2;
      }
      config.remote_host = parts[0];
      config.remote_port = static_cast<int>(port);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  const bool trace_mode =
      !config.scenario.empty() || !config.trace_in.empty();
  if (trace_mode) {
    if (!config.scenario.empty() && !config.trace_in.empty()) {
      std::fprintf(stderr, "--scenario and --trace are exclusive\n");
      return 2;
    }
    // Scenario defaults differ from app-mode defaults (smaller, think-free
    // unless asked).
    if (!think_ms_set) {
      config.think_ms = 0;
    }
    helix::tools::RunTrace(config);
    return 0;
  }
  if (!config.record_out.empty() || !config.summary_out.empty()) {
    std::fprintf(stderr,
                 "--record/--summary-out require --scenario or --trace\n");
    return 2;
  }
  if (config.app != "census" && config.app != "ie" && config.app != "mixed") {
    std::fprintf(stderr, "--app must be census, ie, or mixed\n");
    return 2;
  }
  helix::tools::Run(config);
  return 0;
}
