// helix_server: the SessionService behind a TCP port.
//
// Serves OpenSession / RunIteration / GetCounters / Shutdown for the
// standard applications (census, ie) over the framing protocol. Runs until
// a client sends Shutdown, then drains connections, in-flight iterations,
// and pending materializations, persists the shared stats registry, and
// exits 0 — the CI smoke test asserts exactly this clean lifecycle.
//
// Usage:
//   helix_server [--host=127.0.0.1] [--port=0] [--workspace=DIR]
//                [--threads=0] [--budget-mb=1024] [--record=FILE]
//                [--event-loop=1] [--io-threads=2]
//
// --event-loop=0 selects the legacy thread-per-connection transport;
// the default epoll event loop serves any number of connections from
// --io-threads I/O threads plus the service pool.
//
// Port 0 binds an ephemeral port; the chosen one is printed on the
// "json,{...}" line (record=server_listening) before serving begins.
//
// --record=FILE captures every iteration any client runs (across all
// sessions, in service arrival order) as a .htrc workload trace, written
// at clean shutdown. Think times are recorded as 0 — the server cannot
// observe client-side pauses; workload_driver --record captures those at
// the callsite instead. Server recordings also embed each client's data
// paths verbatim, so they replay only while those files still exist;
// use driver-side --record for portable (${WS}-rebased) traces.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "common/json.h"
#include "dataflow/simd.h"
#include "net/app_specs.h"
#include "net/server.h"
#include "workload/trace.h"

namespace helix {
namespace tools {
namespace {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string workspace;
  int threads = 0;
  int64_t budget_mb = 1024;
  std::string record_out;  // empty = no trace recording
  bool event_loop = true;
  int io_threads = 2;
};

int Run(const ServerConfig& config) {
  net::ServerOptions options;
  options.host = config.host;
  options.port = config.port;
  options.event_loop = config.event_loop;
  options.io_threads = config.io_threads;
  options.service.workspace_dir = config.workspace;
  options.service.storage_budget_bytes = config.budget_mb << 20;
  options.service.num_threads = config.threads;
  workload::TraceRecorder recorder;
  if (!config.record_out.empty()) {
    workload::TraceHeader header;
    header.scenario = "recorded";
    options.service.iteration_observer =
        [&recorder](const service::IterationObservation& obs) {
          recorder.Record(obs.session_id, obs.spec, obs.description,
                          obs.category, /*think_micros=*/0);
        };
    recorder.SetHeader(header);
  }

  auto server = net::HelixServer::Start(options,
                                        net::MakeStandardResolver());
  if (!server.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  JsonWriter json;
  json.BeginObject()
      .KV("record", "server_listening")
      .KV("host", config.host)
      .KV("port", static_cast<int64_t>((*server)->port()))
      .KV("workspace", config.workspace)
      .KV("transport", config.event_loop ? "event_loop" : "threaded")
      .KV("isa", dataflow::simd::ActiveIsaName())
      .EndObject();
  bench::PrintJsonLine(json);
  std::fflush(stdout);

  (*server)->WaitForShutdownRequest();
  std::printf("shutdown requested, draining\n");
  (*server)->Stop();
  if (!config.record_out.empty()) {
    Status written = recorder.WriteFile(config.record_out);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write recorded trace: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("recorded %zu events to %s\n", recorder.num_events(),
                config.record_out.c_str());
  }
  std::printf("clean shutdown\n");
  return 0;
}

}  // namespace
}  // namespace tools
}  // namespace helix

int main(int argc, char** argv) {
  helix::tools::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t v;
    if ((v = helix::bench::FlagValue(arg, "--port")) >= 0) {
      config.port = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--threads")) >= 0) {
      config.threads = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--budget-mb")) >= 0) {
      config.budget_mb = v;
    } else if ((v = helix::bench::FlagValue(arg, "--event-loop")) >= 0) {
      config.event_loop = v != 0;
    } else if ((v = helix::bench::FlagValue(arg, "--io-threads")) >= 0) {
      config.io_threads = static_cast<int>(v);
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      config.host = arg + 7;
    } else if (std::strncmp(arg, "--workspace=", 12) == 0) {
      config.workspace = arg + 12;
    } else if (std::strncmp(arg, "--record=", 9) == 0) {
      config.record_out = arg + 9;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  // Lazy fallback: only materialize a throwaway workspace when none was
  // given (it lives until exit so the store outlasts Run()).
  std::optional<helix::bench::TempWorkspace> fallback_workspace;
  if (config.workspace.empty()) {
    fallback_workspace.emplace("helix-server");
    config.workspace = fallback_workspace->dir();
  }
  return helix::tools::Run(config);
}
