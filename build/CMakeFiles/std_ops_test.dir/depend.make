# Empty dependencies file for std_ops_test.
# This may be replaced when dependencies are built.
