file(REMOVE_RECURSE
  "CMakeFiles/std_ops_test.dir/tests/std_ops_test.cc.o"
  "CMakeFiles/std_ops_test.dir/tests/std_ops_test.cc.o.d"
  "std_ops_test"
  "std_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/std_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
