
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/census_app.cc" "CMakeFiles/helix.dir/src/apps/census_app.cc.o" "gcc" "CMakeFiles/helix.dir/src/apps/census_app.cc.o.d"
  "/root/repo/src/apps/ie_app.cc" "CMakeFiles/helix.dir/src/apps/ie_app.cc.o" "gcc" "CMakeFiles/helix.dir/src/apps/ie_app.cc.o.d"
  "/root/repo/src/baselines/baselines.cc" "CMakeFiles/helix.dir/src/baselines/baselines.cc.o" "gcc" "CMakeFiles/helix.dir/src/baselines/baselines.cc.o.d"
  "/root/repo/src/common/clock.cc" "CMakeFiles/helix.dir/src/common/clock.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/clock.cc.o.d"
  "/root/repo/src/common/csv.cc" "CMakeFiles/helix.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/file_util.cc" "CMakeFiles/helix.dir/src/common/file_util.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/file_util.cc.o.d"
  "/root/repo/src/common/hash.cc" "CMakeFiles/helix.dir/src/common/hash.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/hash.cc.o.d"
  "/root/repo/src/common/json.cc" "CMakeFiles/helix.dir/src/common/json.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/helix.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/helix.dir/src/common/status.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "CMakeFiles/helix.dir/src/common/strings.cc.o" "gcc" "CMakeFiles/helix.dir/src/common/strings.cc.o.d"
  "/root/repo/src/core/change_tracker.cc" "CMakeFiles/helix.dir/src/core/change_tracker.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/change_tracker.cc.o.d"
  "/root/repo/src/core/cse.cc" "CMakeFiles/helix.dir/src/core/cse.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/cse.cc.o.d"
  "/root/repo/src/core/executor.cc" "CMakeFiles/helix.dir/src/core/executor.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/executor.cc.o.d"
  "/root/repo/src/core/materialization.cc" "CMakeFiles/helix.dir/src/core/materialization.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/materialization.cc.o.d"
  "/root/repo/src/core/operator.cc" "CMakeFiles/helix.dir/src/core/operator.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/operator.cc.o.d"
  "/root/repo/src/core/plan_viz.cc" "CMakeFiles/helix.dir/src/core/plan_viz.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/plan_viz.cc.o.d"
  "/root/repo/src/core/program_slicer.cc" "CMakeFiles/helix.dir/src/core/program_slicer.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/program_slicer.cc.o.d"
  "/root/repo/src/core/recompute.cc" "CMakeFiles/helix.dir/src/core/recompute.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/recompute.cc.o.d"
  "/root/repo/src/core/session.cc" "CMakeFiles/helix.dir/src/core/session.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/session.cc.o.d"
  "/root/repo/src/core/std_ops.cc" "CMakeFiles/helix.dir/src/core/std_ops.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/std_ops.cc.o.d"
  "/root/repo/src/core/version_manager.cc" "CMakeFiles/helix.dir/src/core/version_manager.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/version_manager.cc.o.d"
  "/root/repo/src/core/workflow.cc" "CMakeFiles/helix.dir/src/core/workflow.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/workflow.cc.o.d"
  "/root/repo/src/core/workflow_dag.cc" "CMakeFiles/helix.dir/src/core/workflow_dag.cc.o" "gcc" "CMakeFiles/helix.dir/src/core/workflow_dag.cc.o.d"
  "/root/repo/src/dataflow/data_collection.cc" "CMakeFiles/helix.dir/src/dataflow/data_collection.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/data_collection.cc.o.d"
  "/root/repo/src/dataflow/examples.cc" "CMakeFiles/helix.dir/src/dataflow/examples.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/examples.cc.o.d"
  "/root/repo/src/dataflow/features.cc" "CMakeFiles/helix.dir/src/dataflow/features.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/features.cc.o.d"
  "/root/repo/src/dataflow/metrics.cc" "CMakeFiles/helix.dir/src/dataflow/metrics.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/metrics.cc.o.d"
  "/root/repo/src/dataflow/model.cc" "CMakeFiles/helix.dir/src/dataflow/model.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/model.cc.o.d"
  "/root/repo/src/dataflow/schema.cc" "CMakeFiles/helix.dir/src/dataflow/schema.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/schema.cc.o.d"
  "/root/repo/src/dataflow/table.cc" "CMakeFiles/helix.dir/src/dataflow/table.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/table.cc.o.d"
  "/root/repo/src/dataflow/text.cc" "CMakeFiles/helix.dir/src/dataflow/text.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/text.cc.o.d"
  "/root/repo/src/dataflow/value.cc" "CMakeFiles/helix.dir/src/dataflow/value.cc.o" "gcc" "CMakeFiles/helix.dir/src/dataflow/value.cc.o.d"
  "/root/repo/src/datagen/census_gen.cc" "CMakeFiles/helix.dir/src/datagen/census_gen.cc.o" "gcc" "CMakeFiles/helix.dir/src/datagen/census_gen.cc.o.d"
  "/root/repo/src/datagen/news_gen.cc" "CMakeFiles/helix.dir/src/datagen/news_gen.cc.o" "gcc" "CMakeFiles/helix.dir/src/datagen/news_gen.cc.o.d"
  "/root/repo/src/graph/dag.cc" "CMakeFiles/helix.dir/src/graph/dag.cc.o" "gcc" "CMakeFiles/helix.dir/src/graph/dag.cc.o.d"
  "/root/repo/src/graph/maxflow.cc" "CMakeFiles/helix.dir/src/graph/maxflow.cc.o" "gcc" "CMakeFiles/helix.dir/src/graph/maxflow.cc.o.d"
  "/root/repo/src/graph/project_selection.cc" "CMakeFiles/helix.dir/src/graph/project_selection.cc.o" "gcc" "CMakeFiles/helix.dir/src/graph/project_selection.cc.o.d"
  "/root/repo/src/ml/evaluation.cc" "CMakeFiles/helix.dir/src/ml/evaluation.cc.o" "gcc" "CMakeFiles/helix.dir/src/ml/evaluation.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "CMakeFiles/helix.dir/src/ml/logistic_regression.cc.o" "gcc" "CMakeFiles/helix.dir/src/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "CMakeFiles/helix.dir/src/ml/naive_bayes.cc.o" "gcc" "CMakeFiles/helix.dir/src/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/perceptron.cc" "CMakeFiles/helix.dir/src/ml/perceptron.cc.o" "gcc" "CMakeFiles/helix.dir/src/ml/perceptron.cc.o.d"
  "/root/repo/src/nlp/gazetteer.cc" "CMakeFiles/helix.dir/src/nlp/gazetteer.cc.o" "gcc" "CMakeFiles/helix.dir/src/nlp/gazetteer.cc.o.d"
  "/root/repo/src/nlp/mention_decoder.cc" "CMakeFiles/helix.dir/src/nlp/mention_decoder.cc.o" "gcc" "CMakeFiles/helix.dir/src/nlp/mention_decoder.cc.o.d"
  "/root/repo/src/nlp/token_features.cc" "CMakeFiles/helix.dir/src/nlp/token_features.cc.o" "gcc" "CMakeFiles/helix.dir/src/nlp/token_features.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "CMakeFiles/helix.dir/src/nlp/tokenizer.cc.o" "gcc" "CMakeFiles/helix.dir/src/nlp/tokenizer.cc.o.d"
  "/root/repo/src/runtime/async_materializer.cc" "CMakeFiles/helix.dir/src/runtime/async_materializer.cc.o" "gcc" "CMakeFiles/helix.dir/src/runtime/async_materializer.cc.o.d"
  "/root/repo/src/runtime/parallel_scheduler.cc" "CMakeFiles/helix.dir/src/runtime/parallel_scheduler.cc.o" "gcc" "CMakeFiles/helix.dir/src/runtime/parallel_scheduler.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "CMakeFiles/helix.dir/src/runtime/thread_pool.cc.o" "gcc" "CMakeFiles/helix.dir/src/runtime/thread_pool.cc.o.d"
  "/root/repo/src/storage/cost_stats.cc" "CMakeFiles/helix.dir/src/storage/cost_stats.cc.o" "gcc" "CMakeFiles/helix.dir/src/storage/cost_stats.cc.o.d"
  "/root/repo/src/storage/store.cc" "CMakeFiles/helix.dir/src/storage/store.cc.o" "gcc" "CMakeFiles/helix.dir/src/storage/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
