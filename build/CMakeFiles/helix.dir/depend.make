# Empty dependencies file for helix.
# This may be replaced when dependencies are built.
