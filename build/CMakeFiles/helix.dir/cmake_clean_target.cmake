file(REMOVE_RECURSE
  "libhelix.a"
)
