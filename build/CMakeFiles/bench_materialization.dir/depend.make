# Empty dependencies file for bench_materialization.
# This may be replaced when dependencies are built.
