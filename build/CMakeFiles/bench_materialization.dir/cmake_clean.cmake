file(REMOVE_RECURSE
  "CMakeFiles/bench_materialization.dir/bench/bench_materialization.cc.o"
  "CMakeFiles/bench_materialization.dir/bench/bench_materialization.cc.o.d"
  "bench_materialization"
  "bench_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
