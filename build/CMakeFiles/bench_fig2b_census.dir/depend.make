# Empty dependencies file for bench_fig2b_census.
# This may be replaced when dependencies are built.
