file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_census.dir/bench/bench_fig2b_census.cc.o"
  "CMakeFiles/bench_fig2b_census.dir/bench/bench_fig2b_census.cc.o.d"
  "bench_fig2b_census"
  "bench_fig2b_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
