file(REMOVE_RECURSE
  "CMakeFiles/bench_recompute.dir/bench/bench_recompute.cc.o"
  "CMakeFiles/bench_recompute.dir/bench/bench_recompute.cc.o.d"
  "bench_recompute"
  "bench_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
