# Empty dependencies file for bench_recompute.
# This may be replaced when dependencies are built.
