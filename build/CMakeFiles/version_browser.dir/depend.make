# Empty dependencies file for version_browser.
# This may be replaced when dependencies are built.
