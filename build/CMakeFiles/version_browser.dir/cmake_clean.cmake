file(REMOVE_RECURSE
  "CMakeFiles/version_browser.dir/examples/version_browser.cpp.o"
  "CMakeFiles/version_browser.dir/examples/version_browser.cpp.o.d"
  "version_browser"
  "version_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
