file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_ie.dir/bench/bench_fig2a_ie.cc.o"
  "CMakeFiles/bench_fig2a_ie.dir/bench/bench_fig2a_ie.cc.o.d"
  "bench_fig2a_ie"
  "bench_fig2a_ie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_ie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
