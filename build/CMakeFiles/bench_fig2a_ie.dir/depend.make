# Empty dependencies file for bench_fig2a_ie.
# This may be replaced when dependencies are built.
