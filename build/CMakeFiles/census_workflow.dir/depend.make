# Empty dependencies file for census_workflow.
# This may be replaced when dependencies are built.
