file(REMOVE_RECURSE
  "CMakeFiles/census_workflow.dir/examples/census_workflow.cpp.o"
  "CMakeFiles/census_workflow.dir/examples/census_workflow.cpp.o.d"
  "census_workflow"
  "census_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
