file(REMOVE_RECURSE
  "CMakeFiles/information_extraction.dir/examples/information_extraction.cpp.o"
  "CMakeFiles/information_extraction.dir/examples/information_extraction.cpp.o.d"
  "information_extraction"
  "information_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/information_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
