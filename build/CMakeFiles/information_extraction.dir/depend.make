# Empty dependencies file for information_extraction.
# This may be replaced when dependencies are built.
