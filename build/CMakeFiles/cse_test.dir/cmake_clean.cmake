file(REMOVE_RECURSE
  "CMakeFiles/cse_test.dir/tests/cse_test.cc.o"
  "CMakeFiles/cse_test.dir/tests/cse_test.cc.o.d"
  "cse_test"
  "cse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
