# Empty dependencies file for bench_fig1b_plan.
# This may be replaced when dependencies are built.
