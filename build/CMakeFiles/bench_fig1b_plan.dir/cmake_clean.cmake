file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1b_plan.dir/bench/bench_fig1b_plan.cc.o"
  "CMakeFiles/bench_fig1b_plan.dir/bench/bench_fig1b_plan.cc.o.d"
  "bench_fig1b_plan"
  "bench_fig1b_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
