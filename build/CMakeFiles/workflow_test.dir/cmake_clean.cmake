file(REMOVE_RECURSE
  "CMakeFiles/workflow_test.dir/tests/workflow_test.cc.o"
  "CMakeFiles/workflow_test.dir/tests/workflow_test.cc.o.d"
  "workflow_test"
  "workflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
