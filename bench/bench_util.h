// Shared helpers for the figure-reproduction benchmark harnesses.
#ifndef HELIX_BENCH_BENCH_UTIL_H_
#define HELIX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/json.h"
#include "common/status.h"

namespace helix {
namespace bench {

/// Aborts the benchmark with a message on error (benchmarks have no
/// recovery path; a failed setup must be loud).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Scoped temporary directory for benchmark workspaces.
class TempWorkspace {
 public:
  explicit TempWorkspace(const char* prefix)
      : dir_(ValueOrDie(MakeTempDir(prefix), "mktemp")) {}
  ~TempWorkspace() { (void)RemoveDirRecursively(dir_); }

  const std::string& dir() const { return dir_; }
  std::string Path(const std::string& name) const {
    return JoinPath(dir_, name);
  }

 private:
  std::string dir_;
};

/// One system's cumulative-runtime series across iterations; -1 marks a
/// missing data point (system cannot express the iteration, cf. DeepDive
/// in paper Figure 2b).
struct Series {
  std::string name;
  std::vector<double> iteration_ms;  // -1 = n/a
  std::vector<double> cumulative_ms;
};

/// Prints paper-style series as an aligned table plus CSV rows (machine
/// readable, prefixed with "csv,").
inline void PrintFigure(const std::string& title,
                        const std::vector<std::string>& iteration_labels,
                        const std::vector<std::string>& iteration_types,
                        const std::vector<Series>& series) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-4s %-11s", "iter", "type");
  for (const Series& s : series) {
    std::printf(" | %13s %13s", (s.name + " ms").c_str(),
                (s.name + " cum").c_str());
  }
  std::printf("   %s\n", "description");
  for (size_t i = 0; i < iteration_labels.size(); ++i) {
    std::printf("%-4zu %-11s", i, iteration_types[i].c_str());
    for (const Series& s : series) {
      if (i < s.iteration_ms.size() && s.iteration_ms[i] >= 0) {
        std::printf(" | %13.1f %13.1f", s.iteration_ms[i],
                    s.cumulative_ms[i]);
      } else {
        std::printf(" | %13s %13s", "na", "na");
      }
    }
    std::printf("   %s\n", iteration_labels[i].c_str());
  }
  // CSV block for plotting.
  std::printf("csv,iter,type");
  for (const Series& s : series) {
    std::printf(",%s_ms,%s_cum", s.name.c_str(), s.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < iteration_labels.size(); ++i) {
    std::printf("csv,%zu,%s", i, iteration_types[i].c_str());
    for (const Series& s : series) {
      if (i < s.iteration_ms.size() && s.iteration_ms[i] >= 0) {
        std::printf(",%.3f,%.3f", s.iteration_ms[i], s.cumulative_ms[i]);
      } else {
        std::printf(",na,na");
      }
    }
    std::printf("\n");
  }
}

namespace internal {

/// Process-wide log of every document PrintJsonLine emitted, in emission
/// order, so WriteBenchSummary can persist the run without each harness
/// re-plumbing its records. Guarded by its sibling mutex: a few harnesses
/// print from worker threads.
inline std::vector<std::string>& CollectedJsonRecords() {
  static std::vector<std::string>* records = new std::vector<std::string>();
  return *records;
}

inline std::mutex& CollectedJsonMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace internal

/// Prints one machine-readable JSON document on its own line, prefixed
/// with "json," so harnesses can grep it out of mixed human output (the
/// same convention as the "csv," rows above). Every document is also
/// retained in-process for WriteBenchSummary.
inline void PrintJsonLine(const JsonWriter& json) {
  std::printf("json,%s\n", json.str().c_str());
  std::lock_guard<std::mutex> lock(internal::CollectedJsonMutex());
  internal::CollectedJsonRecords().push_back(json.str());
}

/// Writes every record PrintJsonLine emitted so far as one JSON document,
/// `BENCH_<name>.json`, into $HELIX_BENCH_OUT_DIR (default: the current
/// directory). Call it last in a benchmark's main; CI uploads the files
/// as run artifacts so figure data survives the log scroll.
inline void WriteBenchSummary(const char* name) {
  const char* out_dir = std::getenv("HELIX_BENCH_OUT_DIR");
  std::string path = JoinPath(out_dir != nullptr && out_dir[0] != '\0'
                                  ? out_dir
                                  : ".",
                              std::string("BENCH_") + name + ".json");
  std::string doc = "{\"bench\":" + JsonQuote(name) + ",\"records\":[";
  {
    std::lock_guard<std::mutex> lock(internal::CollectedJsonMutex());
    const std::vector<std::string>& records =
        internal::CollectedJsonRecords();
    for (size_t i = 0; i < records.size(); ++i) {
      if (i > 0) {
        doc += ",";
      }
      doc += records[i];
    }
  }
  doc += "]}\n";
  Status written = WriteStringToFile(path, doc);
  if (!written.ok()) {
    std::fprintf(stderr, "WARNING could not write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return;
  }
  std::printf("bench summary written to %s\n", path.c_str());
}

/// Parses "--name=123" style flags: returns the value when `arg` is
/// exactly `name` followed by '=', -1 otherwise. Shared by the
/// self-driving harnesses and tools (non-negative flag values only).
inline int64_t FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return std::atoll(arg + len + 1);
  }
  return -1;
}

/// Nearest-rank percentile of an ascending-sorted latency vector.
inline double PercentileSorted(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(index, sorted.size() - 1)]);
}

}  // namespace bench
}  // namespace helix

#endif  // HELIX_BENCH_BENCH_UTIL_H_
