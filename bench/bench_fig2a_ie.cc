// Reproduces paper Figure 2(a): cumulative runtime on the information
// extraction (person-mention) task, HELIX vs DeepDive. KeystoneML is
// absent "because it is not equipped to handle information extraction
// tasks" (paper Section 2.4); HELIX-unopt is included as the demo's
// no-optimization reference.
//
// Expected shape: HELIX's cumulative runtime ends well below DeepDive's —
// the paper reports ~60% lower — because HELIX materializes only
// intermediates that help future iterations while DeepDive materializes
// every feature-extraction result and always re-runs ML + evaluation.
#include <cstdio>

#include "apps/ie_app.h"
#include "baselines/baselines.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/session.h"
#include "datagen/news_gen.h"

namespace helix {
namespace bench {
namespace {

using baselines::SystemKind;

constexpr int64_t kDocs = 500;
constexpr int kEpochs = 10;

Series RunSystem(SystemKind kind, const TempWorkspace& workspace,
                 const std::string& corpus,
                 const std::vector<apps::IeScriptedIteration>& script) {
  core::SessionOptions options = baselines::MakeSessionOptions(
      kind,
      workspace.Path(std::string("ws-") + baselines::SystemKindToString(kind)),
      1LL << 30, SystemClock::Default());
  auto session = ValueOrDie(core::Session::Open(options), "open session");

  Series series;
  series.name = baselines::SystemKindToString(kind);

  apps::IeConfig config;
  config.corpus_path = corpus;
  config.learner.epochs = kEpochs;

  double cumulative = 0;
  for (const auto& step : script) {
    step.mutate(&config);
    auto result = ValueOrDie(
        session->RunIteration(apps::BuildIeWorkflow(config),
                              step.description, step.category),
        "iteration");
    double ms = static_cast<double>(result.report.total_micros) / 1e3;
    cumulative += ms;
    series.iteration_ms.push_back(ms);
    series.cumulative_ms.push_back(cumulative);
  }
  // Report final extraction quality so the reader can see the workflow is
  // doing real work, not just burning time.
  const auto& metrics =
      session->versions().version(session->versions().LatestId()).metrics;
  auto f1 = metrics.find("span_f1");
  if (f1 != metrics.end()) {
    std::fprintf(stderr, "  %s final span F1: %.3f\n", series.name.c_str(),
                 f1->second);
  }
  return series;
}

void Run() {
  TempWorkspace workspace("helix-fig2a");
  std::string corpus = workspace.Path("news.dat");
  datagen::NewsGenOptions gen;
  gen.num_docs = kDocs;
  CheckOk(datagen::WriteNewsCorpus(gen, corpus), "news datagen");

  auto script = apps::MakeIeIterationScript();
  std::vector<std::string> labels;
  std::vector<std::string> types;
  for (const auto& step : script) {
    labels.push_back(step.description);
    types.push_back(core::ChangeCategoryToString(step.category));
  }

  std::vector<Series> series;
  for (SystemKind kind : {SystemKind::kHelix, SystemKind::kDeepDive,
                          SystemKind::kHelixUnopt}) {
    std::fprintf(stderr, "running %s...\n",
                 baselines::SystemKindToString(kind));
    series.push_back(RunSystem(kind, workspace, corpus, script));
  }

  PrintFigure(
      StrFormat("Figure 2(a): Information extraction, cumulative runtime "
                "(%lld documents, %d epochs)",
                static_cast<long long>(kDocs), kEpochs),
      labels, types, series);

  const Series& helix = series[0];
  const Series& deepdive = series[1];
  const Series& unopt = series[2];
  double helix_cum = helix.cumulative_ms.back();
  double deepdive_cum = deepdive.cumulative_ms.back();
  std::printf("\nsummary:\n");
  std::printf(
      "  cumulative: helix=%.1fms deepdive=%.1fms helix-unopt=%.1fms\n",
      helix_cum, deepdive_cum, unopt.cumulative_ms.back());
  std::printf(
      "  helix cumulative is %.0f%% lower than deepdive (paper: ~60%%)\n",
      100.0 * (deepdive_cum - helix_cum) / deepdive_cum);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main() {
  helix::bench::Run();
  helix::bench::WriteBenchSummary("fig2a_ie");
  return 0;
}
