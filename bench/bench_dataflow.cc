// Benchmark: row-loop vs columnar dataflow kernels.
//
// Workload: a synthetic census table (all-string columns, the CSV
// ingestion shape) at 10k / 100k / 1M rows. Three kernels, each written
// twice with identical semantics:
//
//   filter    — keep rows with hours_per_week > 40;
//   derive    — bucketize age into 10 labeled bins (the Bucketizer scan);
//   featurize — numeric-detect + standardize age/hours, one-hot
//               education/occupation into sparse vectors (the
//               AssembleExamples featurization scan).
//
// The "row" variant drives the row-compatibility API (TableData::at, one
// materialized Value per cell — what the retired row store's operators
// paid per cell, plus nothing the columnar engine can skip for them). The
// "col" variant reads typed columns (string views off the arena) and uses
// selection vectors. Outputs are cross-checked between the two variants,
// then per-kernel and whole-pipeline timings are reported as aligned rows
// and machine-readable JSON lines (grep '^json,'), same convention as the
// other self-driving benches.
//
// Run: ./bench_dataflow [--rows=10000,100000,1000000]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/strings.h"
#include "dataflow/data_collection.h"
#include "dataflow/features.h"
#include "datagen/census_gen.h"

namespace helix {
namespace bench {
namespace {

using dataflow::Column;
using dataflow::ColumnBuilder;
using dataflow::FeatureDict;
using dataflow::SelectionVector;
using dataflow::SparseVector;
using dataflow::StringColumn;
using dataflow::TableData;
using dataflow::Value;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const StringColumn& StringCol(const TableData& t, const char* name) {
  auto col = t.Column(name);
  CheckOk(col.status(), "column lookup");
  const auto* s = dynamic_cast<const StringColumn*>(col.value().get());
  if (s == nullptr) {
    std::fprintf(stderr, "FATAL: column %s is not string-typed\n", name);
    std::abort();
  }
  return *s;
}

// --- filter: hours_per_week > 40 ---------------------------------------------

int64_t FilterRowLoop(const TableData& t, int hours_col) {
  // Row path: materialize each cell, parse, and deep-copy survivors row
  // by row — how every operator in the row store moved data.
  auto out = std::make_shared<TableData>(t.schema());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double hours = 0;
    if (!ParseDouble(t.at(r, hours_col).AsString(), &hours) || hours <= 40) {
      continue;
    }
    dataflow::Row row;
    row.reserve(static_cast<size_t>(t.schema().num_fields()));
    for (int c = 0; c < t.schema().num_fields(); ++c) {
      row.push_back(t.at(r, c));
    }
    CheckOk(out->AppendRow(std::move(row)), "filter append");
  }
  return out->num_rows();
}

int64_t FilterColumnar(const TableData& t, const StringColumn& hours) {
  SelectionVector sel;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double h = 0;
    if (ParseDouble(hours.view(r), &h) && h > 40) {
      sel.push_back(r);
    }
  }
  return t.Filter(sel)->num_rows();
}

// --- derive: bucketize age into 10 bins --------------------------------------

constexpr int kBins = 10;

uint64_t DeriveRowLoop(const TableData& t, int age_col) {
  std::vector<double> parsed(static_cast<size_t>(t.num_rows()));
  double lo = 0;
  double hi = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double x = 0;
    ParseDouble(t.at(r, age_col).AsString(), &x);
    parsed[static_cast<size_t>(r)] = x;
    lo = r == 0 ? x : std::min(lo, x);
    hi = r == 0 ? x : std::max(hi, x);
  }
  double width = std::max((hi - lo) / kBins, 1e-9);
  auto out = std::make_shared<TableData>(
      dataflow::Schema::AllStrings({"bucket"}));
  out->Reserve(t.num_rows());
  uint64_t check = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int b = std::clamp(
        static_cast<int>((parsed[static_cast<size_t>(r)] - lo) / width), 0,
        kBins - 1);
    CheckOk(out->AppendRow({Value(StrFormat("b%d", b))}), "derive append");
    check += static_cast<uint64_t>(b);
  }
  return check;
}

uint64_t DeriveColumnar(const TableData& t, const StringColumn& age) {
  std::vector<double> parsed(static_cast<size_t>(t.num_rows()));
  double lo = 0;
  double hi = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double x = 0;
    ParseDouble(age.view(r), &x);
    parsed[static_cast<size_t>(r)] = x;
    lo = r == 0 ? x : std::min(lo, x);
    hi = r == 0 ? x : std::max(hi, x);
  }
  double width = std::max((hi - lo) / kBins, 1e-9);
  std::vector<std::string> labels;
  for (int b = 0; b < kBins; ++b) {
    labels.push_back(StrFormat("b%d", b));
  }
  ColumnBuilder bucket(dataflow::ValueType::kString);
  bucket.Reserve(t.num_rows());
  uint64_t check = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int b = std::clamp(
        static_cast<int>((parsed[static_cast<size_t>(r)] - lo) / width), 0,
        kBins - 1);
    bucket.AppendString(labels[static_cast<size_t>(b)]);
    check += static_cast<uint64_t>(b);
  }
  auto out = TableData::FromColumns(dataflow::Schema::AllStrings({"bucket"}),
                                    {bucket.Finish()});
  CheckOk(out.status(), "derive table");
  return check;
}

// --- featurize: standardize numerics, one-hot categoricals -------------------

const char* const kNumericCols[] = {"age", "hours_per_week"};
const char* const kOneHotCols[] = {"education", "occupation"};

double FeaturizeRowLoop(const TableData& t,
                        const std::vector<int>& numeric_idx,
                        const std::vector<int>& onehot_idx) {
  FeatureDict dict;
  // Pass 1: means/stddevs off display strings, like the row-wise scan.
  std::vector<double> mean(numeric_idx.size(), 0);
  std::vector<double> stddev(numeric_idx.size(), 1);
  std::vector<int32_t> index(numeric_idx.size(), 0);
  for (size_t f = 0; f < numeric_idx.size(); ++f) {
    double sum = 0;
    double sum_sq = 0;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      double x = 0;
      ParseDouble(t.at(r, numeric_idx[f]).ToDisplayString(), &x);
      sum += x;
      sum_sq += x * x;
    }
    mean[f] = sum / static_cast<double>(t.num_rows());
    double variance =
        sum_sq / static_cast<double>(t.num_rows()) - mean[f] * mean[f];
    stddev[f] = variance > 1e-12 ? std::sqrt(variance) : 1.0;
    index[f] = dict.Intern(t.schema().field(numeric_idx[f]).name);
  }
  double check = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    SparseVector features;
    for (size_t f = 0; f < numeric_idx.size(); ++f) {
      double x = 0;
      ParseDouble(t.at(r, numeric_idx[f]).ToDisplayString(), &x);
      features.Set(index[f], (x - mean[f]) / stddev[f]);
    }
    for (int c : onehot_idx) {
      features.Set(dict.Intern(t.schema().field(c).name + "=" +
                               t.at(r, c).ToDisplayString()),
                   1.0);
    }
    check += features.Get(index[0]);
  }
  return check;
}

double FeaturizeColumnar(const TableData& t,
                         const std::vector<int>& numeric_idx,
                         const std::vector<int>& onehot_idx) {
  FeatureDict dict;
  std::vector<const StringColumn*> numeric_cols;
  std::vector<const StringColumn*> onehot_cols;
  for (int c : numeric_idx) {
    numeric_cols.push_back(
        static_cast<const StringColumn*>(t.column(c).get()));
  }
  for (int c : onehot_idx) {
    onehot_cols.push_back(
        static_cast<const StringColumn*>(t.column(c).get()));
  }
  std::vector<std::vector<double>> parsed(numeric_idx.size());
  std::vector<double> mean(numeric_idx.size(), 0);
  std::vector<double> stddev(numeric_idx.size(), 1);
  std::vector<int32_t> index(numeric_idx.size(), 0);
  for (size_t f = 0; f < numeric_idx.size(); ++f) {
    parsed[f].resize(static_cast<size_t>(t.num_rows()));
    double sum = 0;
    double sum_sq = 0;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      double x = 0;
      ParseDouble(numeric_cols[f]->view(r), &x);
      parsed[f][static_cast<size_t>(r)] = x;
      sum += x;
      sum_sq += x * x;
    }
    mean[f] = sum / static_cast<double>(t.num_rows());
    double variance =
        sum_sq / static_cast<double>(t.num_rows()) - mean[f] * mean[f];
    stddev[f] = variance > 1e-12 ? std::sqrt(variance) : 1.0;
    index[f] = dict.Intern(t.schema().field(numeric_idx[f]).name);
  }
  double check = 0;
  std::string feature_name;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    SparseVector features;
    for (size_t f = 0; f < numeric_idx.size(); ++f) {
      features.Set(index[f],
                   (parsed[f][static_cast<size_t>(r)] - mean[f]) / stddev[f]);
    }
    for (size_t f = 0; f < onehot_cols.size(); ++f) {
      feature_name.assign(t.schema().field(onehot_idx[f]).name);
      feature_name += '=';
      feature_name.append(onehot_cols[f]->view(r));
      features.Set(dict.Intern(feature_name), 1.0);
    }
    check += features.Get(index[0]);
  }
  return check;
}

// --- harness -----------------------------------------------------------------

template <typename Fn>
double BestOfMs(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double t0 = NowMs();
    fn();
    best = std::min(best, NowMs() - t0);
  }
  return best;
}

void ReportKernel(const char* kernel, int64_t rows, double row_ms,
                  double col_ms) {
  double speedup = col_ms > 0 ? row_ms / col_ms : 0;
  std::printf("%-10s %9lld rows   row %9.2f ms   col %9.2f ms   %5.2fx\n",
              kernel, static_cast<long long>(rows), row_ms, col_ms, speedup);
  JsonWriter json;
  json.BeginObject()
      .KV("bench", "dataflow")
      .KV("kernel", kernel)
      .KV("rows", rows)
      .KV("row_ms", row_ms)
      .KV("col_ms", col_ms)
      .KV("speedup", speedup)
      .EndObject();
  PrintJsonLine(json);
}

void RunAt(int64_t rows) {
  datagen::CensusGenOptions opts;
  opts.num_rows = rows;
  auto table = datagen::GenerateCensusTable(opts);
  int hours_col = table->schema().IndexOf("hours_per_week");
  int age_col = table->schema().IndexOf("age");
  std::vector<int> numeric_idx;
  std::vector<int> onehot_idx;
  for (const char* c : kNumericCols) {
    numeric_idx.push_back(table->schema().IndexOf(c));
  }
  for (const char* c : kOneHotCols) {
    onehot_idx.push_back(table->schema().IndexOf(c));
  }
  const StringColumn& hours = StringCol(*table, "hours_per_week");
  const StringColumn& age = StringCol(*table, "age");
  const int reps = rows >= 1000000 ? 2 : 3;

  // Cross-check semantics once before timing.
  int64_t kept_row = FilterRowLoop(*table, hours_col);
  int64_t kept_col = FilterColumnar(*table, hours);
  uint64_t derive_row = DeriveRowLoop(*table, age_col);
  uint64_t derive_col = DeriveColumnar(*table, age);
  double feat_row = FeaturizeRowLoop(*table, numeric_idx, onehot_idx);
  double feat_col = FeaturizeColumnar(*table, numeric_idx, onehot_idx);
  if (kept_row != kept_col || derive_row != derive_col ||
      feat_row != feat_col) {
    std::fprintf(stderr, "FATAL: row/columnar kernels disagree\n");
    std::abort();
  }

  double filter_row_ms =
      BestOfMs(reps, [&] { FilterRowLoop(*table, hours_col); });
  double filter_col_ms = BestOfMs(reps, [&] { FilterColumnar(*table, hours); });
  ReportKernel("filter", rows, filter_row_ms, filter_col_ms);

  double derive_row_ms = BestOfMs(reps, [&] { DeriveRowLoop(*table, age_col); });
  double derive_col_ms = BestOfMs(reps, [&] { DeriveColumnar(*table, age); });
  ReportKernel("derive", rows, derive_row_ms, derive_col_ms);

  double feat_row_ms = BestOfMs(
      reps, [&] { FeaturizeRowLoop(*table, numeric_idx, onehot_idx); });
  double feat_col_ms = BestOfMs(
      reps, [&] { FeaturizeColumnar(*table, numeric_idx, onehot_idx); });
  ReportKernel("featurize", rows, feat_row_ms, feat_col_ms);

  ReportKernel("pipeline", rows, filter_row_ms + derive_row_ms + feat_row_ms,
               filter_col_ms + derive_col_ms + feat_col_ms);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  std::vector<long long> row_counts = {10000, 100000, 1000000};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      row_counts.clear();
      for (const std::string& part :
           helix::Split(std::string(argv[i] + 7), ',')) {
        if (!part.empty()) {
          row_counts.push_back(std::atoll(part.c_str()));
        }
      }
    }
  }
  std::printf("bench_dataflow: row-loop vs columnar kernels\n");
  for (long long rows : row_counts) {
    helix::bench::RunAt(rows);
  }
  helix::bench::WriteBenchSummary("dataflow");
  return 0;
}
