// Benchmark: row-loop vs columnar dataflow kernels.
//
// Workload: a synthetic census table (all-string columns, the CSV
// ingestion shape) at 10k / 100k / 1M rows. Three kernels, each written
// twice with identical semantics:
//
//   filter    — keep rows with hours_per_week > 40;
//   derive    — bucketize age into 10 labeled bins (the Bucketizer scan);
//   featurize — numeric-detect + standardize age/hours, one-hot
//               education/occupation into sparse vectors (the
//               AssembleExamples featurization scan).
//
// The "row" variant drives the row-compatibility API (TableData::at, one
// materialized Value per cell — what the retired row store's operators
// paid per cell, plus nothing the columnar engine can skip for them). The
// "col" variant reads typed columns the way the operators now do:
// dictionary-encoded string columns are processed per distinct entry and
// broadcast per row through the SIMD kernels; plain string columns fall
// back to arena views. Outputs are cross-checked between the two
// variants, then per-kernel and whole-pipeline timings are reported as
// aligned rows and machine-readable JSON lines (grep '^json,'), same
// convention as the other self-driving benches.
//
// A second section times the SIMD kernels themselves (filter, gather,
// bitmap-AND, featurize/standardize, dict-encode) and reports rows/sec
// under the runtime-selected ISA.
//
// Run: ./bench_dataflow [--rows=10000,100000,1000000]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/strings.h"
#include "dataflow/data_collection.h"
#include "dataflow/features.h"
#include "dataflow/simd.h"
#include "datagen/census_gen.h"

namespace helix {
namespace bench {
namespace {

using dataflow::Column;
using dataflow::ColumnBuilder;
using dataflow::DictionaryColumn;
using dataflow::FeatureDict;
using dataflow::SelectionVector;
using dataflow::SparseVector;
using dataflow::StringColumn;
using dataflow::TableData;
using dataflow::Value;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Column& Col(const TableData& t, const char* name) {
  auto col = t.Column(name);
  CheckOk(col.status(), "column lookup");
  return *col.value();
}

// --- filter: hours_per_week > 40 ---------------------------------------------

int64_t FilterRowLoop(const TableData& t, int hours_col) {
  // Row path: materialize each cell, parse, and deep-copy survivors row
  // by row — how every operator in the row store moved data.
  auto out = std::make_shared<TableData>(t.schema());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double hours = 0;
    if (!ParseDouble(t.at(r, hours_col).AsString(), &hours) || hours <= 40) {
      continue;
    }
    dataflow::Row row;
    row.reserve(static_cast<size_t>(t.schema().num_fields()));
    for (int c = 0; c < t.schema().num_fields(); ++c) {
      row.push_back(t.at(r, c));
    }
    CheckOk(out->AppendRow(std::move(row)), "filter append");
  }
  return out->num_rows();
}

int64_t FilterColumnar(const TableData& t, const Column& hours) {
  SelectionVector sel;
  const auto* dict = dynamic_cast<const DictionaryColumn*>(&hours);
  if (dict != nullptr && dict->null_count() == 0 && t.num_rows() > 0) {
    // Parse each distinct entry once, then select rows by code with the
    // SIMD membership kernel — per-row work is one table lookup.
    size_t d = static_cast<size_t>(dict->dict().num_entries());
    std::vector<uint32_t> keep(d, 0);
    for (size_t c = 0; c < d; ++c) {
      double h = 0;
      if (ParseDouble(dict->dict().entry(static_cast<uint32_t>(c)), &h) &&
          h > 40) {
        keep[c] = 1;
      }
    }
    dataflow::simd::SelectCodesInSet(dict->codes(), t.num_rows(), keep.data(),
                                     &sel);
  } else {
    const auto* s = dynamic_cast<const StringColumn*>(&hours);
    if (s == nullptr) {
      std::fprintf(stderr, "FATAL: filter column is not string-typed\n");
      std::abort();
    }
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      double h = 0;
      if (ParseDouble(s->view(r), &h) && h > 40) {
        sel.push_back(r);
      }
    }
  }
  return t.Filter(sel)->num_rows();
}

// --- derive: bucketize age into 10 bins --------------------------------------

constexpr int kBins = 10;

uint64_t DeriveRowLoop(const TableData& t, int age_col) {
  std::vector<double> parsed(static_cast<size_t>(t.num_rows()));
  double lo = 0;
  double hi = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    double x = 0;
    ParseDouble(t.at(r, age_col).AsString(), &x);
    parsed[static_cast<size_t>(r)] = x;
    lo = r == 0 ? x : std::min(lo, x);
    hi = r == 0 ? x : std::max(hi, x);
  }
  double width = std::max((hi - lo) / kBins, 1e-9);
  auto out = std::make_shared<TableData>(
      dataflow::Schema::AllStrings({"bucket"}));
  out->Reserve(t.num_rows());
  uint64_t check = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int b = std::clamp(
        static_cast<int>((parsed[static_cast<size_t>(r)] - lo) / width), 0,
        kBins - 1);
    CheckOk(out->AppendRow({Value(StrFormat("b%d", b))}), "derive append");
    check += static_cast<uint64_t>(b);
  }
  return check;
}

uint64_t DeriveColumnar(const TableData& t, const Column& age) {
  int64_t n = t.num_rows();
  std::vector<double> parsed(static_cast<size_t>(n));
  const auto* dict = dynamic_cast<const DictionaryColumn*>(&age);
  const uint32_t* codes = nullptr;
  std::vector<double> per_code;
  if (dict != nullptr && dict->null_count() == 0 && n > 0) {
    codes = dict->codes();
    size_t d = static_cast<size_t>(dict->dict().num_entries());
    per_code.assign(d, 0.0);
    for (size_t c = 0; c < d; ++c) {
      ParseDouble(dict->dict().entry(static_cast<uint32_t>(c)), &per_code[c]);
    }
    dataflow::simd::ExpandCodes(codes, n, per_code.data(), parsed.data());
  } else {
    const auto* s = dynamic_cast<const StringColumn*>(&age);
    if (s == nullptr) {
      std::fprintf(stderr, "FATAL: derive column is not string-typed\n");
      std::abort();
    }
    for (int64_t r = 0; r < n; ++r) {
      double x = 0;
      ParseDouble(s->view(r), &x);
      parsed[static_cast<size_t>(r)] = x;
    }
  }
  double lo = 0;
  double hi = 0;
  for (int64_t r = 0; r < n; ++r) {
    double x = parsed[static_cast<size_t>(r)];
    lo = r == 0 ? x : std::min(lo, x);
    hi = r == 0 ? x : std::max(hi, x);
  }
  double width = std::max((hi - lo) / kBins, 1e-9);
  std::vector<std::string> labels;
  for (int b = 0; b < kBins; ++b) {
    labels.push_back(StrFormat("b%d", b));
  }
  ColumnBuilder bucket(dataflow::ValueType::kString);
  bucket.Reserve(n);
  uint64_t check = 0;
  if (codes != nullptr) {
    // Bucketize per distinct entry, broadcast per row through the codes.
    std::vector<int> bucket_of(per_code.size(), 0);
    for (size_t c = 0; c < per_code.size(); ++c) {
      bucket_of[c] =
          std::clamp(static_cast<int>((per_code[c] - lo) / width), 0,
                     kBins - 1);
    }
    for (int64_t r = 0; r < n; ++r) {
      int b = bucket_of[codes[r]];
      bucket.AppendString(labels[static_cast<size_t>(b)]);
      check += static_cast<uint64_t>(b);
    }
  } else {
    for (int64_t r = 0; r < n; ++r) {
      int b = std::clamp(
          static_cast<int>((parsed[static_cast<size_t>(r)] - lo) / width), 0,
          kBins - 1);
      bucket.AppendString(labels[static_cast<size_t>(b)]);
      check += static_cast<uint64_t>(b);
    }
  }
  auto out = TableData::FromColumns(dataflow::Schema::AllStrings({"bucket"}),
                                    {bucket.Finish()});
  CheckOk(out.status(), "derive table");
  return check;
}

// --- featurize: standardize numerics, one-hot categoricals -------------------

const char* const kNumericCols[] = {"age", "hours_per_week"};
const char* const kOneHotCols[] = {"education", "occupation"};

double FeaturizeRowLoop(const TableData& t,
                        const std::vector<int>& numeric_idx,
                        const std::vector<int>& onehot_idx) {
  FeatureDict dict;
  // Pass 1: means/stddevs off display strings, like the row-wise scan.
  std::vector<double> mean(numeric_idx.size(), 0);
  std::vector<double> stddev(numeric_idx.size(), 1);
  std::vector<int32_t> index(numeric_idx.size(), 0);
  for (size_t f = 0; f < numeric_idx.size(); ++f) {
    double sum = 0;
    double sum_sq = 0;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      double x = 0;
      ParseDouble(t.at(r, numeric_idx[f]).ToDisplayString(), &x);
      sum += x;
      sum_sq += x * x;
    }
    mean[f] = sum / static_cast<double>(t.num_rows());
    double variance =
        sum_sq / static_cast<double>(t.num_rows()) - mean[f] * mean[f];
    stddev[f] = variance > 1e-12 ? std::sqrt(variance) : 1.0;
    index[f] = dict.Intern(t.schema().field(numeric_idx[f]).name);
  }
  double check = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    SparseVector features;
    for (size_t f = 0; f < numeric_idx.size(); ++f) {
      double x = 0;
      ParseDouble(t.at(r, numeric_idx[f]).ToDisplayString(), &x);
      features.Set(index[f], (x - mean[f]) / stddev[f]);
    }
    for (int c : onehot_idx) {
      features.Set(dict.Intern(t.schema().field(c).name + "=" +
                               t.at(r, c).ToDisplayString()),
                   1.0);
    }
    check += features.Get(index[0]);
  }
  return check;
}

double FeaturizeColumnar(const TableData& t,
                         const std::vector<int>& numeric_idx,
                         const std::vector<int>& onehot_idx) {
  FeatureDict dict;
  int64_t n = t.num_rows();
  // Numerics: parse per distinct entry when dictionary-encoded, broadcast
  // with ExpandCodes, then standardize the whole array in place.
  std::vector<std::vector<double>> parsed(numeric_idx.size());
  std::vector<int32_t> index(numeric_idx.size(), 0);
  for (size_t f = 0; f < numeric_idx.size(); ++f) {
    parsed[f].resize(static_cast<size_t>(n));
    const Column& col = *t.column(numeric_idx[f]);
    const auto* dcol = dynamic_cast<const DictionaryColumn*>(&col);
    if (dcol != nullptr && dcol->null_count() == 0 && n > 0) {
      size_t d = static_cast<size_t>(dcol->dict().num_entries());
      std::vector<double> per_code(d, 0.0);
      for (size_t c = 0; c < d; ++c) {
        ParseDouble(dcol->dict().entry(static_cast<uint32_t>(c)),
                    &per_code[c]);
      }
      dataflow::simd::ExpandCodes(dcol->codes(), n, per_code.data(),
                                  parsed[f].data());
    } else {
      const auto* s = dynamic_cast<const StringColumn*>(&col);
      if (s == nullptr) {
        std::fprintf(stderr, "FATAL: numeric column is not string-typed\n");
        std::abort();
      }
      for (int64_t r = 0; r < n; ++r) {
        double x = 0;
        ParseDouble(s->view(r), &x);
        parsed[f][static_cast<size_t>(r)] = x;
      }
    }
    double sum = 0;
    double sum_sq = 0;
    dataflow::simd::SumAndSumSq(parsed[f].data(), n, &sum, &sum_sq);
    double mean = sum / static_cast<double>(n);
    double variance = sum_sq / static_cast<double>(n) - mean * mean;
    double stddev = variance > 1e-12 ? std::sqrt(variance) : 1.0;
    index[f] = dict.Intern(t.schema().field(numeric_idx[f]).name);
    dataflow::simd::Standardize(parsed[f].data(), n, mean, stddev,
                                parsed[f].data());
  }
  // One-hots: dictionary columns intern one feature id per distinct
  // entry, lazily on first occurrence so FeatureDict ids match the
  // row-wise scan.
  struct OneHot {
    const DictionaryColumn* dict = nullptr;
    const uint32_t* codes = nullptr;
    const StringColumn* str = nullptr;
    std::vector<int32_t> interned;
  };
  std::vector<OneHot> onehots(onehot_idx.size());
  for (size_t f = 0; f < onehot_idx.size(); ++f) {
    const Column& col = *t.column(onehot_idx[f]);
    const auto* dcol = dynamic_cast<const DictionaryColumn*>(&col);
    if (dcol != nullptr && dcol->null_count() == 0) {
      onehots[f].dict = dcol;
      onehots[f].codes = dcol->codes();
      onehots[f].interned.assign(
          static_cast<size_t>(dcol->dict().num_entries()), -1);
    } else {
      onehots[f].str = dynamic_cast<const StringColumn*>(&col);
      if (onehots[f].str == nullptr) {
        std::fprintf(stderr, "FATAL: one-hot column is not string-typed\n");
        std::abort();
      }
    }
  }
  double check = 0;
  std::string feature_name;
  for (int64_t r = 0; r < n; ++r) {
    SparseVector features;
    for (size_t f = 0; f < numeric_idx.size(); ++f) {
      features.Set(index[f], parsed[f][static_cast<size_t>(r)]);
    }
    for (size_t f = 0; f < onehots.size(); ++f) {
      OneHot& oh = onehots[f];
      if (oh.dict != nullptr) {
        uint32_t c = oh.codes[r];
        if (oh.interned[c] < 0) {
          feature_name.assign(t.schema().field(onehot_idx[f]).name);
          feature_name += '=';
          feature_name.append(oh.dict->dict().entry(c));
          oh.interned[c] = dict.Intern(feature_name);
        }
        features.Set(oh.interned[c], 1.0);
      } else {
        feature_name.assign(t.schema().field(onehot_idx[f]).name);
        feature_name += '=';
        feature_name.append(oh.str->view(r));
        features.Set(dict.Intern(feature_name), 1.0);
      }
    }
    check += features.Get(index[0]);
  }
  return check;
}

// --- harness -----------------------------------------------------------------

template <typename Fn>
double BestOfMs(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    double t0 = NowMs();
    fn();
    best = std::min(best, NowMs() - t0);
  }
  return best;
}

void ReportKernel(const char* kernel, int64_t rows, double row_ms,
                  double col_ms) {
  double speedup = col_ms > 0 ? row_ms / col_ms : 0;
  std::printf("%-10s %9lld rows   row %9.2f ms   col %9.2f ms   %5.2fx\n",
              kernel, static_cast<long long>(rows), row_ms, col_ms, speedup);
  JsonWriter json;
  json.BeginObject()
      .KV("bench", "dataflow")
      .KV("kernel", kernel)
      .KV("rows", rows)
      .KV("row_ms", row_ms)
      .KV("col_ms", col_ms)
      .KV("speedup", speedup)
      .EndObject();
  PrintJsonLine(json);
}

void RunAt(int64_t rows) {
  datagen::CensusGenOptions opts;
  opts.num_rows = rows;
  auto table = datagen::GenerateCensusTable(opts);
  int hours_col = table->schema().IndexOf("hours_per_week");
  int age_col = table->schema().IndexOf("age");
  std::vector<int> numeric_idx;
  std::vector<int> onehot_idx;
  for (const char* c : kNumericCols) {
    numeric_idx.push_back(table->schema().IndexOf(c));
  }
  for (const char* c : kOneHotCols) {
    onehot_idx.push_back(table->schema().IndexOf(c));
  }
  const Column& hours = Col(*table, "hours_per_week");
  const Column& age = Col(*table, "age");
  const int reps = rows >= 1000000 ? 2 : 3;

  // Cross-check semantics once before timing.
  int64_t kept_row = FilterRowLoop(*table, hours_col);
  int64_t kept_col = FilterColumnar(*table, hours);
  uint64_t derive_row = DeriveRowLoop(*table, age_col);
  uint64_t derive_col = DeriveColumnar(*table, age);
  double feat_row = FeaturizeRowLoop(*table, numeric_idx, onehot_idx);
  double feat_col = FeaturizeColumnar(*table, numeric_idx, onehot_idx);
  if (kept_row != kept_col || derive_row != derive_col ||
      feat_row != feat_col) {
    std::fprintf(stderr, "FATAL: row/columnar kernels disagree\n");
    std::abort();
  }

  double filter_row_ms =
      BestOfMs(reps, [&] { FilterRowLoop(*table, hours_col); });
  double filter_col_ms = BestOfMs(reps, [&] { FilterColumnar(*table, hours); });
  ReportKernel("filter", rows, filter_row_ms, filter_col_ms);

  double derive_row_ms = BestOfMs(reps, [&] { DeriveRowLoop(*table, age_col); });
  double derive_col_ms = BestOfMs(reps, [&] { DeriveColumnar(*table, age); });
  ReportKernel("derive", rows, derive_row_ms, derive_col_ms);

  double feat_row_ms = BestOfMs(
      reps, [&] { FeaturizeRowLoop(*table, numeric_idx, onehot_idx); });
  double feat_col_ms = BestOfMs(
      reps, [&] { FeaturizeColumnar(*table, numeric_idx, onehot_idx); });
  ReportKernel("featurize", rows, feat_row_ms, feat_col_ms);

  ReportKernel("pipeline", rows, filter_row_ms + derive_row_ms + feat_row_ms,
               filter_col_ms + derive_col_ms + feat_col_ms);
}

// --- SIMD kernel micro-benchmarks --------------------------------------------

void ReportMicro(const char* kernel, int64_t rows, double ms) {
  double rps = ms > 0 ? static_cast<double>(rows) * 1000.0 / ms : 0;
  std::printf("kernel/%-12s %9lld rows  %9.3f ms  %14.0f rows/s  [%s]\n",
              kernel, static_cast<long long>(rows), ms, rps,
              dataflow::simd::ActiveIsaName());
  JsonWriter json;
  json.BeginObject()
      .KV("bench", "dataflow")
      .KV("kernel", kernel)
      .KV("rows", rows)
      .KV("ms", ms)
      .KV("rows_per_sec", rps)
      .KV("isa", dataflow::simd::ActiveIsaName())
      .EndObject();
  PrintJsonLine(json);
}

void RunMicroKernels(int64_t rows) {
  const int reps = 5;
  size_t un = static_cast<size_t>(rows);
  // Deterministic synthetic inputs (splitmix-style LCG).
  std::vector<double> vals(un);
  std::vector<uint32_t> codes(un);
  uint64_t state = 42;
  for (size_t i = 0; i < un; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    vals[i] = static_cast<double>(state >> 11) *
              (1.0 / 9007199254740992.0);  // [0,1)
    codes[i] = static_cast<uint32_t>(state >> 32) & 63u;
  }

  SelectionVector sel;
  double filter_ms = BestOfMs(reps, [&] {
    sel.clear();
    dataflow::simd::SelectGreaterThan(vals.data(), rows, 0.5, &sel);
  });
  ReportMicro("simd_filter", rows, filter_ms);

  std::vector<double> gathered(sel.size());
  double gather_ms = BestOfMs(reps, [&] {
    dataflow::simd::GatherF64(vals.data(), sel.data(),
                              static_cast<int64_t>(sel.size()),
                              gathered.data());
  });
  ReportMicro("simd_gather", static_cast<int64_t>(sel.size()), gather_ms);

  size_t bytes = (un + 7) / 8;
  std::vector<uint8_t> bm_a(bytes, 0xAC);
  std::vector<uint8_t> bm_b(bytes, 0xF3);
  std::vector<uint8_t> bm_out(bytes);
  double bitmap_ms = BestOfMs(reps, [&] {
    dataflow::simd::BitmapAnd(bm_a.data(), bm_b.data(), bytes, bm_out.data());
  });
  ReportMicro("simd_bitmap_and", rows, bitmap_ms);

  std::vector<double> standardized(un);
  double feat_ms = BestOfMs(reps, [&] {
    dataflow::simd::Standardize(vals.data(), rows, 0.5, 0.2,
                                standardized.data());
  });
  ReportMicro("simd_featurize", rows, feat_ms);

  // Dict-encode: intern 1M cells drawn from 64 distinct entries through
  // the ColumnBuilder's incremental dictionary.
  std::vector<std::string> cats;
  for (int c = 0; c < 64; ++c) {
    cats.push_back(StrFormat("category_%02d", c));
  }
  int64_t encoded_size = 0;
  double dict_ms = BestOfMs(reps, [&] {
    ColumnBuilder b(dataflow::ValueType::kString);
    b.Reserve(rows);
    for (size_t i = 0; i < un; ++i) {
      b.AppendString(cats[codes[i]]);
    }
    encoded_size += b.Finish()->SizeBytes();
  });
  (void)encoded_size;
  ReportMicro("dict_encode", rows, dict_ms);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  std::vector<long long> row_counts = {10000, 100000, 1000000};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      row_counts.clear();
      for (const std::string& part :
           helix::Split(std::string(argv[i] + 7), ',')) {
        if (!part.empty()) {
          row_counts.push_back(std::atoll(part.c_str()));
        }
      }
    }
  }
  std::printf("bench_dataflow: row-loop vs columnar kernels [isa=%s]\n",
              helix::dataflow::simd::ActiveIsaName());
  for (long long rows : row_counts) {
    helix::bench::RunAt(rows);
  }
  helix::bench::RunMicroKernels(row_counts.empty() ? 1000000
                                                   : row_counts.back());
  helix::bench::WriteBenchSummary("dataflow");
  return 0;
}
