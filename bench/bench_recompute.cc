// Microbenchmarks for the recomputation optimizer (paper Section 2.2):
//
//  * PTIME scaling of the min-cut solver on growing DAGs (the paper's
//    complexity claim);
//  * the cost of the explicit project-selection encoding vs the direct
//    min-cut construction;
//  * plan quality: OPT vs the greedy / naive-reuse / no-reuse heuristics
//    over an ensemble of random instances (printed after the timing runs).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/recompute.h"
#include "graph/dag.h"

namespace helix {
namespace core {
namespace {

// Random layered DAG with mixed loadability, the shape of a real workflow
// store state mid-session.
RecomputeProblem MakeInstance(int n, uint64_t seed, graph::Dag* dag,
                              double loadable_rate = 0.5) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    dag->AddNode();
  }
  for (int i = 1; i < n; ++i) {
    int parents = static_cast<int>(rng.NextInt(1, 2));
    for (int p = 0; p < parents; ++p) {
      int from = static_cast<int>(rng.NextInt(std::max(0, i - 8), i - 1));
      (void)dag->AddEdge(from, i);
    }
  }
  RecomputeProblem problem;
  problem.dag = dag;
  problem.costs.resize(static_cast<size_t>(n));
  problem.required.assign(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    NodeCosts& c = problem.costs[static_cast<size_t>(i)];
    c.compute_micros = rng.NextInt(100, 100000);
    c.loadable = rng.NextBool(loadable_rate);
    if (c.loadable) {
      c.load_micros = rng.NextInt(100, 100000);
    }
  }
  // A few required outputs near the sinks.
  problem.required[static_cast<size_t>(n - 1)] = true;
  if (n > 4) {
    problem.required[static_cast<size_t>(n - 3)] = true;
  }
  return problem;
}

void BM_RecomputeMinCut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dag dag;
  RecomputeProblem problem = MakeInstance(n, 42, &dag);
  for (auto _ : state) {
    auto plan = SolveRecomputation(problem);
    benchmark::DoNotOptimize(plan);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RecomputeMinCut)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity();

void BM_RecomputeViaProjectSelection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dag dag;
  RecomputeProblem problem = MakeInstance(n, 42, &dag);
  for (auto _ : state) {
    auto plan = SolveRecomputationViaProjectSelection(problem);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RecomputeViaProjectSelection)
    ->RangeMultiplier(4)
    ->Range(16, 4096);

void BM_RecomputeGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  graph::Dag dag;
  RecomputeProblem problem = MakeInstance(n, 42, &dag);
  for (auto _ : state) {
    RecomputePlan plan = SolveRecomputationGreedy(problem);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RecomputeGreedy)->RangeMultiplier(4)->Range(16, 4096);

// Plan-quality ablation: how much latency do the heuristics leave on the
// table relative to OPT? Printed once after the timing benchmarks.
void ReportPlanQuality() {
  const int kInstances = 200;
  const int kNodes = 60;
  double greedy_excess = 0;
  double naive_excess = 0;
  double noreuse_excess = 0;
  int greedy_suboptimal = 0;
  for (int i = 0; i < kInstances; ++i) {
    graph::Dag dag;
    RecomputeProblem problem =
        MakeInstance(kNodes, static_cast<uint64_t>(1000 + i), &dag);
    auto opt = SolveRecomputation(problem);
    if (!opt.ok() || opt->planned_cost_micros == 0) {
      continue;
    }
    double base = static_cast<double>(opt->planned_cost_micros);
    RecomputePlan greedy = SolveRecomputationGreedy(problem);
    RecomputePlan naive = SolveRecomputationNaiveReuse(problem);
    RecomputePlan noreuse = SolveRecomputationNoReuse(problem);
    greedy_excess += static_cast<double>(greedy.planned_cost_micros) / base;
    naive_excess += static_cast<double>(naive.planned_cost_micros) / base;
    noreuse_excess +=
        static_cast<double>(noreuse.planned_cost_micros) / base;
    greedy_suboptimal += greedy.planned_cost_micros > opt->planned_cost_micros;
  }
  std::printf(
      "\nplan quality over %d random %d-node instances (cost relative to "
      "OPT=1.0):\n"
      "  greedy      %.3fx (suboptimal on %d/%d instances)\n"
      "  naive-reuse %.3fx  (DeepDive-style load-everything)\n"
      "  no-reuse    %.3fx  (KeystoneML-style recompute-everything)\n",
      kInstances, kNodes, greedy_excess / kInstances, greedy_suboptimal,
      kInstances, naive_excess / kInstances, noreuse_excess / kInstances);
}

}  // namespace
}  // namespace core
}  // namespace helix

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  helix::core::ReportPlanQuality();
  helix::bench::WriteBenchSummary("recompute");
  return 0;
}
