// Per-scenario workload-trace benchmark: replays every generated scenario
// (src/workload/generator.h) against an in-process SessionService and
// reports throughput + reuse per scenario.
//
// Each scenario is one of the paper's human-in-the-loop edit classes
// (localized edits, hyperparameter sweep, feature add/drop, periodic data
// refresh, streaming append), so the per-scenario hit rates line up with
// the paper's reuse narrative: sweeps and appends reuse heavily, full
// refreshes barely at all.
//
// Reported as "json," lines (one trace_bench record per scenario plus the
// standard per-user/aggregate lines from the replay), and — unlike the
// other harnesses, which write one combined summary — as one
// BENCH_trace_<scenario>.json per scenario in $HELIX_BENCH_OUT_DIR, so CI
// baselines each edit class independently.
//
// Usage: bench_trace [--users=3] [--iterations=6] [--rows=2000]
//                    [--docs=24] [--seed=1] [--threads=0]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/file_util.h"
#include "common/json.h"
#include "workload/generator.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace helix {
namespace bench {
namespace {

struct BenchConfig {
  int users = 3;
  int iterations = 6;
  int64_t rows = 2000;
  int64_t docs = 24;
  uint64_t seed = 1;
  int threads = 0;
};

std::string Hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Writes one scenario's record as its own BENCH_trace_<scenario>.json
/// (same envelope as WriteBenchSummary, scoped to one record instead of
/// the process-wide log).
void WriteScenarioSummary(const std::string& scenario,
                          const JsonWriter& record) {
  const char* out_dir = std::getenv("HELIX_BENCH_OUT_DIR");
  std::string name = "trace_" + scenario;
  std::string path = JoinPath(out_dir != nullptr && out_dir[0] != '\0'
                                  ? out_dir
                                  : ".",
                              "BENCH_" + name + ".json");
  std::string doc = "{\"bench\":" + JsonQuote(name) + ",\"records\":[" +
                    record.str() + "]}\n";
  CheckOk(WriteStringToFile(path, doc), "write scenario summary");
  std::printf("bench summary written to %s\n", path.c_str());
}

void RunScenario(const std::string& scenario, const BenchConfig& config,
                 const TempWorkspace& workspace) {
  workload::ScenarioConfig gen;
  gen.scenario = scenario;
  gen.seed = config.seed;
  gen.users = config.users;
  gen.iterations = config.iterations;
  gen.rows = config.rows;
  gen.docs = config.docs;
  gen.think_ms = 0;  // benchmark throughput, not think time
  workload::Trace trace =
      ValueOrDie(workload::GenerateTrace(gen), "generate trace");

  std::string data_dir = workspace.Path(scenario + "-data");
  CheckOk(workload::MaterializeTraceData(trace, data_dir),
          "materialize trace data");

  workload::ReplayOptions replay;
  replay.workspace_dir = workspace.Path(scenario + "-ws");
  replay.threads = config.threads > 0 ? config.threads : config.users;
  replay.data_dir = data_dir;
  workload::ReplayResult result =
      ValueOrDie(workload::ReplayTrace(trace, replay), "replay");

  std::vector<int64_t> latencies;
  latencies.reserve(result.records.size());
  for (const workload::IterationRecord& record : result.records) {
    latencies.push_back(record.latency_micros);
  }
  std::sort(latencies.begin(), latencies.end());

  JsonWriter json;
  json.BeginObject()
      .KV("record", "trace_bench")
      .KV("scenario", scenario)
      .KV("seed", trace.header.seed)
      .KV("users", static_cast<int64_t>(config.users))
      .KV("iterations_per_user", static_cast<int64_t>(config.iterations))
      .KV("events", static_cast<int64_t>(result.records.size()))
      .KV("wall_ms", static_cast<double>(result.wall_micros) / 1e3)
      .KV("throughput_iters_per_sec",
          result.wall_micros > 0
              ? static_cast<double>(result.records.size()) * 1e6 /
                    static_cast<double>(result.wall_micros)
              : 0)
      .KV("p50_ms", PercentileSorted(latencies, 0.5) / 1e3)
      .KV("p99_ms", PercentileSorted(latencies, 0.99) / 1e3)
      .KV("num_computed", result.totals.num_computed)
      .KV("num_loaded", result.totals.num_loaded)
      .KV("num_shared", result.totals.num_shared)
      .KV("cross_session_loads", result.totals.cross_session_loads)
      .KV("hit_rate", result.hit_rate())
      .KV("saved_ms",
          static_cast<double>(result.totals.saved_micros) / 1e3)
      .KV("trace_fingerprint", Hex64(workload::TraceFingerprint(trace)))
      .KV("run_fingerprint", Hex64(result.run_fingerprint))
      .EndObject();
  PrintJsonLine(json);
  WriteScenarioSummary(scenario, json);
}

void Run(const BenchConfig& config) {
  TempWorkspace workspace("helix-bench-trace");
  for (const std::string& scenario : workload::ScenarioNames()) {
    RunScenario(scenario, config, workspace);
  }
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  helix::bench::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t v;
    if ((v = helix::bench::FlagValue(arg, "--users")) >= 0) {
      config.users = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--iterations")) >= 0) {
      config.iterations = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--rows")) >= 0) {
      config.rows = v;
    } else if ((v = helix::bench::FlagValue(arg, "--docs")) >= 0) {
      config.docs = v;
    } else if ((v = helix::bench::FlagValue(arg, "--seed")) >= 0) {
      config.seed = static_cast<uint64_t>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--threads")) >= 0) {
      config.threads = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  helix::bench::Run(config);
  return 0;
}
