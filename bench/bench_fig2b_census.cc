// Reproduces paper Figure 2(b): cumulative runtime on the Census
// classification task for HELIX vs DeepDive vs KeystoneML (plus
// HELIX-unopt, the demo's "without optimizations" comparison point).
//
// The 10-iteration script mixes the paper's three edit categories:
// purple = data pre-processing, orange = ML, green = post-processing.
// Expected shape (paper Section 2.4):
//   * HELIX cumulative runtime is roughly an order of magnitude below
//     KeystoneML's, which re-runs everything each iteration;
//   * HELIX post-processing (green) iterations are near zero;
//   * ML (orange) iterations cost more than green, less than purple;
//   * DeepDive has no data for iterations > 2: its ML and evaluation
//     components are not user-configurable, so only pre-processing edits
//     are expressible.
//
// Absolute numbers differ from the paper (in-process C++ engine vs their
// Spark cluster); the ordering and per-category behaviour are the claims
// under reproduction.
#include <cstdio>
#include <map>

#include "apps/census_app.h"
#include "baselines/baselines.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace helix {
namespace bench {
namespace {

using baselines::SystemKind;

constexpr int64_t kRows = 16000;
constexpr int kEpochs = 30;

Series RunSystem(SystemKind kind, const TempWorkspace& workspace,
                 const std::string& train, const std::string& test,
                 const std::vector<apps::ScriptedIteration>& script) {
  core::SessionOptions options = baselines::MakeSessionOptions(
      kind,
      workspace.Path(std::string("ws-") + baselines::SystemKindToString(kind)),
      1LL << 30, SystemClock::Default());
  auto session = ValueOrDie(core::Session::Open(options), "open session");

  Series series;
  series.name = baselines::SystemKindToString(kind);

  apps::CensusConfig config;
  config.train_path = train;
  config.test_path = test;
  config.learner.epochs = kEpochs;

  double cumulative = 0;
  bool deepdive_expressible = true;
  for (const auto& step : script) {
    step.mutate(&config);
    if (kind == SystemKind::kDeepDive && !apps::DeepDiveSupports(step)) {
      // The paper reports missing DeepDive data beyond this point (its ML
      // and evaluation components are not user-configurable).
      deepdive_expressible = false;
    }
    if (!deepdive_expressible) {
      series.iteration_ms.push_back(-1);
      series.cumulative_ms.push_back(-1);
      continue;
    }
    auto result = ValueOrDie(
        session->RunIteration(apps::BuildCensusWorkflow(config),
                              step.description, step.category),
        "iteration");
    double ms = static_cast<double>(result.report.total_micros) / 1e3;
    cumulative += ms;
    series.iteration_ms.push_back(ms);
    series.cumulative_ms.push_back(cumulative);
  }
  return series;
}

void Run() {
  TempWorkspace workspace("helix-fig2b");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = kRows;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  auto script = apps::MakeCensusIterationScript();
  std::vector<std::string> labels;
  std::vector<std::string> types;
  for (const auto& step : script) {
    labels.push_back(step.description);
    types.push_back(core::ChangeCategoryToString(step.category));
  }

  std::vector<Series> series;
  for (SystemKind kind : {SystemKind::kHelix, SystemKind::kDeepDive,
                          SystemKind::kKeystoneMl, SystemKind::kHelixUnopt}) {
    std::fprintf(stderr, "running %s...\n",
                 baselines::SystemKindToString(kind));
    series.push_back(RunSystem(kind, workspace, train, test, script));
  }

  PrintFigure(
      StrFormat("Figure 2(b): Census classification, cumulative runtime "
                "(%lld rows, %d epochs)",
                static_cast<long long>(kRows), kEpochs),
      labels, types, series);

  // Shape checks reported inline (the EXPERIMENTS.md evidence).
  const Series& helix = series[0];
  const Series& keystone = series[2];
  const Series& unopt = series[3];
  double helix_cum = helix.cumulative_ms.back();
  std::printf("\nsummary:\n");
  std::printf("  cumulative: helix=%.1fms keystoneml=%.1fms (%.2fx) "
              "helix-unopt=%.1fms (%.2fx)\n",
              helix_cum, keystone.cumulative_ms.back(),
              keystone.cumulative_ms.back() / helix_cum,
              unopt.cumulative_ms.back(),
              unopt.cumulative_ms.back() / helix_cum);

  // Per-category mean iteration time for HELIX (paper: green ~ 0 < orange
  // < purple).
  std::map<std::string, std::pair<double, int>> by_type;
  for (size_t i = 1; i < script.size(); ++i) {  // skip the initial run
    auto& [total, count] = by_type[types[i]];
    total += helix.iteration_ms[i];
    count += 1;
  }
  std::printf("  helix mean iteration time by change type:\n");
  for (const auto& [type, agg] : by_type) {
    std::printf("    %-11s %.1f ms\n", type.c_str(),
                agg.first / agg.second);
  }
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main() {
  helix::bench::Run();
  helix::bench::WriteBenchSummary("fig2b_census");
  return 0;
}
