// Benchmark: the parallel DAG runtime vs the sequential executor.
//
// Workload: a 4-way-wide synthetic DAG — one cheap source fanning out into
// 4 independent lanes of depth-4 operator chains, joined by one sink. Each
// lane operator does non-trivial work: a real CPU hashing pass over a
// buffer plus a blocking wait modeling the I/O-bound portion of realistic
// operators (feature extraction reading shards, model io, RPC-backed
// sources). Lanes are mutually independent, so the DAG has parallelism 4;
// the sequential executor leaves all of it on the table.
//
// Runs the identical workload at max_parallelism 1/2/4/8 and reports wall
// time and speedup vs the sequential run, both as a human table and as one
// machine-readable JSON line (grep '^json,').
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/json.h"
#include "core/executor.h"
#include "core/std_ops.h"
#include "core/workflow.h"
#include "core/workflow_dag.h"
#include "dataflow/data_collection.h"

namespace helix {
namespace bench {
namespace {

using core::ExecutionOptions;
using core::ExecutionReport;
using core::NodeRef;
using core::Phase;
using core::Workflow;
using dataflow::DataCollection;
using dataflow::Schema;
using dataflow::TableData;
using dataflow::Value;

constexpr int kLanes = 4;
constexpr int kDepth = 4;
constexpr int kHashPasses = 400;        // ~a few ms of real CPU per node
constexpr int kBlockingMillis = 40;     // modeled I/O wait per node
const int kThreadCounts[] = {1, 2, 4, 8};

DataCollection MakeRow(const std::string& content) {
  auto table = std::make_shared<TableData>(Schema::AllStrings({"v"}));
  CheckOk(table->AppendRow({Value(content)}), "append row");
  return DataCollection::FromTable(table);
}

// One lane operator: hash a buffer for a while (CPU), block as if reading
// a shard (I/O), and fold the inputs' fingerprints into the output so the
// result — and therefore the DAG's data dependencies — is real.
core::OperatorFn LaneWork(int lane, int depth) {
  return [lane, depth](const std::vector<const DataCollection*>& inputs)
             -> Result<DataCollection> {
    uint64_t acc = FnvHash64("seed", 4) + static_cast<uint64_t>(lane * 131) +
                   static_cast<uint64_t>(depth);
    for (const DataCollection* input : inputs) {
      acc ^= input->Fingerprint();
    }
    char buffer[4096];
    for (size_t i = 0; i < sizeof(buffer); ++i) {
      buffer[i] = static_cast<char>((acc >> (i % 8)) & 0xFF);
    }
    for (int pass = 0; pass < kHashPasses; ++pass) {
      acc = FnvHash64(buffer, sizeof(buffer)) ^ (acc + pass);
      buffer[pass % sizeof(buffer)] = static_cast<char>(acc & 0xFF);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kBlockingMillis));
    return MakeRow(std::to_string(acc));
  };
}

Workflow BuildWideWorkflow() {
  Workflow wf("bench-parallel");
  NodeRef source = wf.Add(core::ops::Reducer(
      "source", Phase::kDataPreprocessing, 0,
      [](const std::vector<const DataCollection*>&) -> Result<DataCollection> {
        return MakeRow("source");
      }));
  std::vector<NodeRef> heads;
  for (int lane = 0; lane < kLanes; ++lane) {
    NodeRef prev = source;
    for (int depth = 0; depth < kDepth; ++depth) {
      prev = wf.Add(
          core::ops::Reducer("lane" + std::to_string(lane) + "_" +
                                 std::to_string(depth),
                             Phase::kDataPreprocessing, 0,
                             LaneWork(lane, depth)),
          {prev});
    }
    heads.push_back(prev);
  }
  NodeRef sink = wf.Add(
      core::ops::Reducer(
          "sink", Phase::kMachineLearning, 0,
          [](const std::vector<const DataCollection*>& inputs)
              -> Result<DataCollection> {
            uint64_t acc = 0;
            for (const DataCollection* input : inputs) {
              acc ^= input->Fingerprint();
            }
            return MakeRow(std::to_string(acc));
          }),
      heads);
  wf.MarkOutput(sink);
  return wf;
}

double RunOnce(const core::WorkflowDag& dag, int threads,
               uint64_t* output_fingerprint) {
  ExecutionOptions options;
  options.clock = SystemClock::Default();
  options.max_parallelism = threads;
  auto start = std::chrono::steady_clock::now();
  ExecutionReport report = ValueOrDie(Execute(dag, options), "execute");
  double wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count() /
                   1000.0;
  if (report.num_computed != kLanes * kDepth + 2) {
    std::fprintf(stderr, "FATAL unexpected computed count %d\n",
                 report.num_computed);
    std::abort();
  }
  *output_fingerprint = report.outputs.at("sink").Fingerprint();
  return wall_ms;
}

int Main() {
  Workflow wf = BuildWideWorkflow();
  core::WorkflowDag dag =
      ValueOrDie(core::WorkflowDag::Compile(wf), "compile");
  std::printf(
      "bench_parallel: %d lanes x depth %d (+source/sink), "
      "%d hash passes + %d ms blocking per node\n",
      kLanes, kDepth, kHashPasses, kBlockingMillis);

  std::vector<int> threads;
  std::vector<double> wall_ms;
  uint64_t reference_fingerprint = 0;
  for (int t : kThreadCounts) {
    uint64_t fingerprint = 0;
    double ms = RunOnce(dag, t, &fingerprint);
    if (reference_fingerprint == 0) {
      reference_fingerprint = fingerprint;
    } else if (fingerprint != reference_fingerprint) {
      std::fprintf(stderr, "FATAL output diverged at %d threads\n", t);
      std::abort();
    }
    threads.push_back(t);
    wall_ms.push_back(ms);
  }

  std::printf("%-8s %12s %9s\n", "threads", "wall_ms", "speedup");
  JsonWriter json;
  json.BeginObject()
      .KV("benchmark", "bench_parallel")
      .KV("lanes", kLanes)
      .KV("depth", kDepth)
      .KV("nodes", kLanes * kDepth + 2)
      .KV("hash_passes", kHashPasses)
      .KV("blocking_ms", kBlockingMillis)
      .Key("results")
      .BeginArray();
  for (size_t i = 0; i < threads.size(); ++i) {
    double speedup = wall_ms[0] / wall_ms[i];
    std::printf("%-8d %12.1f %8.2fx\n", threads[i], wall_ms[i], speedup);
    json.BeginObject()
        .KV("threads", threads[i])
        .KV("wall_ms", wall_ms[i])
        .KV("speedup", speedup)
        .EndObject();
  }
  json.EndArray().EndObject();
  PrintJsonLine(json);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main() {
  int rc = helix::bench::Main();
  helix::bench::WriteBenchSummary("parallel");
  return rc;
}
