// Materialization-policy ablation (paper Section 2.3).
//
// Replays a scripted 12-iteration editing session over a synthetic
// workflow on a VIRTUAL clock (operator costs are declared, so the
// simulated hours run in milliseconds) under four policies:
//
//   helix-online : the paper's online rule  r_i = 2 l_i - (c_i + anc_i)
//   always       : materialize everything that fits (DeepDive-ish)
//   never        : materialize nothing (KeystoneML-ish)
//
// each under a tight and a large storage budget. Reported: cumulative
// simulated runtime and peak store usage. Expected shape: online << never,
// online <= always (the paper's "judicious materialization" claim), and
// online uses far less storage than always at equal runtime.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/materialization.h"
#include "core/session.h"
#include "core/std_ops.h"

namespace helix {
namespace core {
namespace bench_ {

namespace ops = core::ops;
using helix::bench::TempWorkspace;
using helix::bench::ValueOrDie;

// A census-like synthetic workflow: ingest -> scan -> three extractors ->
// assemble -> train -> predict -> eval, with minute-scale declared costs
// and realistic payload sizes (so the byte budget binds). Two nodes are
// deliberately cheap-to-compute but bulky ("expandA"/"expandB"): always-
// materialize wastes both time and budget on them, the online rule skips
// them (r_i = 2 l_i - (c_i + anc) > 0).
// `prep_tag`/`ml_tag`/`eval_tag` version the respective stages.
Workflow MakeWorkflow(int64_t prep_tag, int64_t ml_tag, int64_t eval_tag) {
  Workflow wf("ablation");
  auto synth = [&](const char* name, Phase phase, int64_t tag,
                   int64_t compute_ms, int64_t load_ms, int64_t bytes,
                   std::vector<NodeRef> inputs) {
    SyntheticCosts costs;
    costs.compute_micros = compute_ms * 1000;
    costs.load_micros = load_ms * 1000;
    costs.write_micros = load_ms * 1000;  // writes cost about one read
    return wf.Add(ops::Synthetic(name, phase, tag, costs, bytes),
                  std::move(inputs));
  };
  const int64_t kMiB = 1 << 20;
  NodeRef ingest = synth("ingest", Phase::kDataPreprocessing, 1, 30000,
                         4000, 8 * kMiB, {});
  NodeRef scan = synth("scan", Phase::kDataPreprocessing, prep_tag, 90000,
                       6000, 12 * kMiB, {ingest});
  // A cheap side source whose bulky expansions are fast to recompute but
  // slow to reload: 2*l > c + ancestors, so the online rule skips them
  // while always-materialize burns time and budget on them.
  NodeRef side = synth("sideSrc", Phase::kDataPreprocessing, 1, 1000, 900,
                       kMiB, {});
  NodeRef ea = synth("expandA", Phase::kDataPreprocessing, prep_tag, 800,
                     9000, 18 * kMiB, {side});
  NodeRef eb = synth("expandB", Phase::kDataPreprocessing, prep_tag, 600,
                     8000, 16 * kMiB, {side});
  NodeRef fa = synth("featA", Phase::kDataPreprocessing, prep_tag, 25000,
                     2000, 3 * kMiB, {scan, ea});
  NodeRef fb = synth("featB", Phase::kDataPreprocessing, prep_tag, 20000,
                     2000, 3 * kMiB, {scan, eb});
  NodeRef fc = synth("featC", Phase::kDataPreprocessing, prep_tag, 15000,
                     2000, 2 * kMiB, {scan});
  NodeRef assemble = synth("assemble", Phase::kDataPreprocessing, prep_tag,
                           40000, 3000, 6 * kMiB, {fa, fb, fc});
  NodeRef train = synth("train", Phase::kMachineLearning, ml_tag, 120000,
                        1000, kMiB / 2, {assemble});
  NodeRef predict = synth("predict", Phase::kMachineLearning, ml_tag, 8000,
                          1500, 2 * kMiB, {train, assemble});
  NodeRef eval = synth("eval", Phase::kPostprocessing, eval_tag, 2000, 500,
                       kMiB / 4, {predict});
  wf.MarkOutput(eval);
  return wf;
}

struct Step {
  const char* description;
  ChangeCategory category;
  int64_t prep;
  int64_t ml;
  int64_t eval;
};

const std::vector<Step>& Script() {
  static const std::vector<Step> kScript = {
      {"initial", ChangeCategory::kInitial, 1, 1, 1},
      {"tune regularization", ChangeCategory::kMachineLearning, 1, 2, 1},
      {"new metric", ChangeCategory::kEvaluation, 1, 2, 2},
      {"add feature", ChangeCategory::kDataPreprocessing, 2, 2, 2},
      {"tune learning rate", ChangeCategory::kMachineLearning, 2, 3, 2},
      {"another metric", ChangeCategory::kEvaluation, 2, 3, 3},
      {"re-run identical", ChangeCategory::kEvaluation, 2, 3, 3},
      {"bigger model", ChangeCategory::kMachineLearning, 2, 4, 3},
      {"feature cleanup", ChangeCategory::kDataPreprocessing, 3, 4, 3},
      {"tune threshold", ChangeCategory::kEvaluation, 3, 4, 4},
      {"final ml sweep", ChangeCategory::kMachineLearning, 3, 5, 4},
      {"final metrics", ChangeCategory::kEvaluation, 3, 5, 5},
  };
  return kScript;
}

struct PolicyResult {
  std::string name;
  double simulated_seconds = 0;
  int64_t peak_store_bytes = 0;
};

PolicyResult RunPolicy(const std::string& name,
                       std::shared_ptr<MaterializationPolicy> policy,
                       bool enable_materialization, int64_t budget_bytes) {
  TempWorkspace workspace("helix-mat-ablation");
  VirtualClock clock;
  SessionOptions options;
  options.workspace_dir = workspace.dir();
  options.storage_budget_bytes = budget_bytes;
  options.clock = &clock;
  options.mat_policy = std::move(policy);
  options.enable_materialization = enable_materialization;
  auto session = ValueOrDie(Session::Open(options), "open session");

  PolicyResult result;
  result.name = name;
  for (const Step& step : Script()) {
    auto iteration = ValueOrDie(
        session->RunIteration(MakeWorkflow(step.prep, step.ml, step.eval),
                              step.description, step.category),
        "iteration");
    (void)iteration;
    if (session->store() != nullptr) {
      result.peak_store_bytes =
          std::max(result.peak_store_bytes, session->store()->TotalBytes());
    }
  }
  result.simulated_seconds =
      static_cast<double>(session->cumulative_micros()) / 1e6;
  return result;
}

// "always (large budget)" doubles as the max-reuse reference: every
// reusable intermediate is on disk, so no policy can enable more reuse —
// it can only avoid the write overhead, which is exactly what the online
// rule is for.
void Run() {
  std::printf("Materialization policy ablation (virtual clock; 12-iteration "
              "script; declared costs sum to ~%d simulated minutes per cold "
              "run)\n",
              (30 + 90 + 25 + 20 + 15 + 40 + 120 + 8 + 2) / 60);

  struct Config {
    std::string label;
    std::shared_ptr<MaterializationPolicy> policy;
    bool materialize;
    int64_t budget;
  };
  // A store budget that comfortably fits the valuable intermediates of a
  // couple of versions but not every version of every node.
  const int64_t kTightBudget = 48LL << 20;  // 48 MiB
  const int64_t kHugeBudget = 1LL << 40;

  std::vector<Config> configs;
  configs.push_back({"helix-online (tight budget)",
                     std::make_shared<OnlineCostModelPolicy>(), true,
                     kTightBudget});
  configs.push_back({"helix-online (large budget)",
                     std::make_shared<OnlineCostModelPolicy>(), true,
                     kHugeBudget});
  configs.push_back({"always (tight budget)",
                     std::make_shared<AlwaysMaterializePolicy>(), true,
                     kTightBudget});
  configs.push_back({"always (large budget)",
                     std::make_shared<AlwaysMaterializePolicy>(), true,
                     kHugeBudget});
  configs.push_back({"never", nullptr, false, 0});

  std::printf("\n%-28s %18s %16s\n", "policy", "simulated runtime",
              "peak store");
  double never_seconds = 0;
  std::map<std::string, double> seconds;
  for (const Config& config : configs) {
    PolicyResult result = RunPolicy(config.label, config.policy,
                                    config.materialize, config.budget);
    seconds[config.label] = result.simulated_seconds;
    if (config.label == "never") {
      never_seconds = result.simulated_seconds;
    }
    std::printf("%-28s %15.1f s %16s\n", result.name.c_str(),
                result.simulated_seconds,
                HumanBytes(result.peak_store_bytes).c_str());
  }
  std::printf("\nsummary: online policy saves %.0f%% of cumulative runtime "
              "vs never-materialize (large budget)\n",
              100.0 *
                  (never_seconds - seconds["helix-online (large budget)"]) /
                  never_seconds);
}

}  // namespace bench_
}  // namespace core
}  // namespace helix

int main() {
  helix::core::bench_::Run();
  helix::bench::WriteBenchSummary("materialization");
  return 0;
}
