// Reproduces paper Figure 1(b): the optimized execution plan for the
// modified Census workflow.
//
// Runs the Figure 1a program, then applies the paper's exact iterative
// edit — add the marital_status extractor (msExt) to has_extractors and
// remove an existing feature — and prints the optimized plan for the
// modified version: pruned (grayed-out) operators, nodes reloaded from
// disk (drum on the left), and nodes materialized to disk (drum on the
// right), in both ASCII and Graphviz DOT.
#include <cstdio>

#include "apps/census_app.h"
#include "baselines/baselines.h"
#include "bench/bench_util.h"
#include "core/plan_viz.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace helix {
namespace bench {
namespace {

void Run() {
  TempWorkspace workspace("helix-fig1b");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = 8000;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  core::SessionOptions options = baselines::MakeSessionOptions(
      baselines::SystemKind::kHelix, workspace.Path("ws"), 1LL << 30,
      SystemClock::Default());
  auto session = ValueOrDie(core::Session::Open(options), "open session");

  apps::CensusConfig config;
  config.train_path = train;
  config.test_path = test;
  config.learner.epochs = 20;

  // Version 1: the Figure 1a program.
  auto v1 = ValueOrDie(
      session->RunIteration(apps::BuildCensusWorkflow(config),
                            "Figure 1a program",
                            core::ChangeCategory::kInitial),
      "v1");
  std::printf("=== version 1 (initial) ===\n%s\n",
              core::RenderPlanAscii(v1.dag, v1.report).c_str());

  // Version 2: the paper's edit — `+ msExt`, swap into has_extractors.
  config.use_marital_status = true;  // + ms refers_to FieldExtractor(...)
  config.use_edu = false;            // - eduExt dropped from has_extractors
  auto v2 = ValueOrDie(
      session->RunIteration(apps::BuildCensusWorkflow(config),
                            "add msExt, drop eduExt (Figure 1a +/- lines)",
                            core::ChangeCategory::kDataPreprocessing),
      "v2");

  std::printf("=== detected changes (change tracker) ===\n%s\n",
              core::RenderDiff(v2.dag, v2.diff).c_str());
  std::printf("=== Figure 1(b): optimized plan for the modified workflow "
              "===\n%s\n",
              core::RenderPlanAscii(v2.dag, v2.report).c_str());
  std::printf("=== Graphviz DOT (render with `dot -Tpdf`) ===\n%s\n",
              core::RenderPlanDot(v2.dag, v2.report).c_str());
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main() {
  helix::bench::Run();
  helix::bench::WriteBenchSummary("fig1b_plan");
  return 0;
}
