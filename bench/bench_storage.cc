// Microbenchmarks for the storage substrate: DataCollection serialization
// and IntermediateStore put/get throughput. These costs are the "l_i" side
// of every optimizer decision, so their absolute magnitudes matter for
// interpreting the figure benchmarks.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_collection.h"
#include "storage/store.h"

namespace helix {
namespace {

using dataflow::DataCollection;
using dataflow::ExamplesData;
using dataflow::Schema;
using dataflow::TableData;
using dataflow::Value;

DataCollection MakeTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_shared<TableData>(
      Schema::AllStrings({"a", "b", "c", "d"}));
  table->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    (void)table->AppendRow({Value(StrFormat("row-%lld", (long long)i)),
                            Value(StrFormat("val-%llu", (unsigned long long)
                                            rng.NextBelow(1000))),
                            Value(StrFormat("%llu", (unsigned long long)
                                            rng.NextU64())),
                            Value(std::string(24, 'x'))});
  }
  return DataCollection::FromTable(std::move(table));
}

DataCollection MakeExamples(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto data = std::make_shared<ExamplesData>();
  for (int j = 0; j < 2000; ++j) {
    data->mutable_dict()->Intern(StrFormat("feature_%d", j));
  }
  data->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    dataflow::Example e;
    e.id = i;
    e.label = rng.NextBool() ? 1.0 : 0.0;
    for (int k = 0; k < 12; ++k) {
      e.features.Set(static_cast<int32_t>(rng.NextBelow(2000)), 1.0);
    }
    data->Add(std::move(e));
  }
  return DataCollection::FromExamples(std::move(data));
}

void BM_SerializeTable(benchmark::State& state) {
  DataCollection data = MakeTable(state.range(0), 1);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string s = data.SerializeToString();
    bytes += static_cast<int64_t>(s.size());
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DeserializeTable(benchmark::State& state) {
  std::string bytes = MakeTable(state.range(0), 1).SerializeToString();
  int64_t processed = 0;
  for (auto _ : state) {
    auto restored = DataCollection::DeserializeFromString(bytes);
    benchmark::DoNotOptimize(restored);
    processed += static_cast<int64_t>(bytes.size());
  }
  state.SetBytesProcessed(processed);
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializeExamples(benchmark::State& state) {
  DataCollection data = MakeExamples(state.range(0), 2);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string s = data.SerializeToString();
    bytes += static_cast<int64_t>(s.size());
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeExamples)->Arg(10000)->Arg(50000);

void BM_StorePutGet(benchmark::State& state) {
  bench::TempWorkspace workspace("helix-store-bench");
  storage::StoreOptions options;
  options.budget_bytes = 4LL << 30;
  auto store = bench::ValueOrDie(
      storage::IntermediateStore::Open(workspace.dir(), options), "open");
  DataCollection data = MakeTable(state.range(0), 3);
  uint64_t sig = 1;
  int64_t bytes = 0;
  for (auto _ : state) {
    bench::CheckOk(store->Put(sig, "bench", data, 0), "put");
    auto loaded = store->Get(sig);
    benchmark::DoNotOptimize(loaded);
    bench::CheckOk(store->Remove(sig), "remove");
    ++sig;
    bytes += data.SizeBytes();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_StorePutGet)->Arg(1000)->Arg(20000);

void BM_FingerprintTable(benchmark::State& state) {
  DataCollection data = MakeTable(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.Fingerprint());
  }
}
BENCHMARK(BM_FingerprintTable)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace helix

BENCHMARK_MAIN();
