// Microbenchmarks for the storage substrate: DataCollection serialization,
// IntermediateStore put/get throughput, sharded-vs-single-lock contention,
// and disk-backend read/write bandwidth. These costs are the "l_i" side
// of every optimizer decision, so their absolute magnitudes matter for
// interpreting the figure benchmarks.
//
// The custom main runs two self-driving harnesses first (each emits one
// "json,"-prefixed machine-readable line per configuration via
// bench_util.h), then hands over to Google Benchmark for the registered
// microbenchmarks.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_collection.h"
#include "storage/store.h"

namespace helix {
namespace {

using dataflow::DataCollection;
using dataflow::ExamplesData;
using dataflow::Schema;
using dataflow::TableData;
using dataflow::Value;

DataCollection MakeTable(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  auto table = std::make_shared<TableData>(
      Schema::AllStrings({"a", "b", "c", "d"}));
  table->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    (void)table->AppendRow({Value(StrFormat("row-%lld", (long long)i)),
                            Value(StrFormat("val-%llu", (unsigned long long)
                                            rng.NextBelow(1000))),
                            Value(StrFormat("%llu", (unsigned long long)
                                            rng.NextU64())),
                            Value(std::string(24, 'x'))});
  }
  return DataCollection::FromTable(std::move(table));
}

DataCollection MakeExamples(int64_t n, uint64_t seed) {
  Rng rng(seed);
  auto data = std::make_shared<ExamplesData>();
  for (int j = 0; j < 2000; ++j) {
    data->mutable_dict()->Intern(StrFormat("feature_%d", j));
  }
  data->Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    dataflow::Example e;
    e.id = i;
    e.label = rng.NextBool() ? 1.0 : 0.0;
    for (int k = 0; k < 12; ++k) {
      e.features.Set(static_cast<int32_t>(rng.NextBelow(2000)), 1.0);
    }
    data->Add(std::move(e));
  }
  return DataCollection::FromExamples(std::move(data));
}

void BM_SerializeTable(benchmark::State& state) {
  DataCollection data = MakeTable(state.range(0), 1);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string s = data.SerializeToString();
    bytes += static_cast<int64_t>(s.size());
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DeserializeTable(benchmark::State& state) {
  std::string bytes = MakeTable(state.range(0), 1).SerializeToString();
  int64_t processed = 0;
  for (auto _ : state) {
    auto restored = DataCollection::DeserializeFromString(bytes);
    benchmark::DoNotOptimize(restored);
    processed += static_cast<int64_t>(bytes.size());
  }
  state.SetBytesProcessed(processed);
}
BENCHMARK(BM_DeserializeTable)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SerializeExamples(benchmark::State& state) {
  DataCollection data = MakeExamples(state.range(0), 2);
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string s = data.SerializeToString();
    bytes += static_cast<int64_t>(s.size());
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeExamples)->Arg(10000)->Arg(50000);

void BM_StorePutGet(benchmark::State& state) {
  bench::TempWorkspace workspace("helix-store-bench");
  storage::StoreOptions options;
  options.budget_bytes = 4LL << 30;
  auto store = bench::ValueOrDie(
      storage::IntermediateStore::Open(workspace.dir(), options), "open");
  DataCollection data = MakeTable(state.range(0), 3);
  uint64_t sig = 1;
  int64_t bytes = 0;
  for (auto _ : state) {
    bench::CheckOk(store->Put(sig, "bench", data, 0), "put");
    auto loaded = store->Get(sig);
    benchmark::DoNotOptimize(loaded);
    bench::CheckOk(store->Remove(sig), "remove");
    ++sig;
    bytes += data.SizeBytes();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_StorePutGet)->Arg(1000)->Arg(20000);

void BM_FingerprintTable(benchmark::State& state) {
  DataCollection data = MakeTable(state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.Fingerprint());
  }
}
BENCHMARK(BM_FingerprintTable)->Arg(1000)->Arg(100000);

// --- Self-driving harness 1: shard contention ------------------------------
//
// Preloads a memory-backed store (isolating lock behavior from disk I/O)
// and hammers the metadata/read path from T threads, comparing one shard
// (the legacy single-mutex layout) against a striped index. On a 1-CPU
// container the thread counts time-slice, so the single-lock penalty shows
// up muted — the json lines carry the thread count so harnesses can judge.
void RunShardContention() {
  constexpr int kEntries = 256;
  constexpr int kOpsPerThread = 40000;
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads = std::min(hw, 8);

  for (int shards : {1, 16}) {
    storage::StoreOptions options;
    options.backend = storage::StorageBackendKind::kMemory;
    options.shard_count = shards;
    options.budget_bytes = 1LL << 30;
    auto store = bench::ValueOrDie(storage::IntermediateStore::Open("", options),
                                   "open memory store");
    for (int i = 0; i < kEntries; ++i) {
      bench::CheckOk(store->Put(static_cast<uint64_t>(i + 1), "bench",
                                MakeTable(20, static_cast<uint64_t>(i)), 0),
                     "preload put");
    }

    std::atomic<bool> go{false};
    std::atomic<int64_t> failures{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&store, &go, &failures, t]() {
        Rng rng(static_cast<uint64_t>(t) + 99);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kOpsPerThread; ++i) {
          uint64_t sig = rng.NextBelow(kEntries) + 1;
          // Mixed metadata + payload traffic, like the executor's warm
          // path: mostly Has/GetEntry probes, every 8th op a full Get.
          if (i % 8 == 0) {
            if (!store->Get(sig).ok()) {
              failures.fetch_add(1);
            }
          } else {
            benchmark::DoNotOptimize(store->Has(sig));
            benchmark::DoNotOptimize(store->GetEntry(sig));
          }
        }
      });
    }
    auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread& w : workers) {
      w.join();
    }
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (failures.load() != 0) {
      std::fprintf(stderr, "FATAL contention harness: %lld failed gets\n",
                   (long long)failures.load());
      std::abort();
    }
    double total_ops = static_cast<double>(threads) * kOpsPerThread;
    JsonWriter json;
    json.BeginObject()
        .KV("bench", "store_shard_contention")
        .KV("backend", "memory")
        .KV("shards", shards)
        .KV("threads", threads)
        .KV("entries", kEntries)
        .KV("ops", total_ops)
        .KV("wall_ms", wall_ms)
        .KV("mops_per_sec", total_ops / wall_ms / 1000.0)
        .EndObject();
    bench::PrintJsonLine(json);
  }
}

// --- Self-driving harness 2: disk backend throughput ------------------------
//
// Sequentially writes then reads back ~1 MiB payloads through a
// disk-backed store, reporting bandwidth the way the store's own load-cost
// estimator sees it (serialization + segment append; read + deserialize).
void RunDiskThroughput() {
  constexpr int kPayloads = 24;
  constexpr int64_t kRowsPerPayload = 12000;  // ~1 MiB serialized
  bench::TempWorkspace workspace("helix-disk-throughput");
  storage::StoreOptions options;
  options.backend = storage::StorageBackendKind::kDisk;
  options.budget_bytes = 4LL << 30;
  auto store = bench::ValueOrDie(
      storage::IntermediateStore::Open(workspace.dir(), options),
      "open disk store");

  std::vector<DataCollection> payloads;
  payloads.reserve(kPayloads);
  int64_t total_bytes = 0;
  for (int i = 0; i < kPayloads; ++i) {
    payloads.push_back(MakeTable(kRowsPerPayload, static_cast<uint64_t>(i)));
    total_bytes +=
        static_cast<int64_t>(payloads.back().SerializeToString().size());
  }

  auto write_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPayloads; ++i) {
    bench::CheckOk(store->Put(static_cast<uint64_t>(i + 1), "bench",
                              payloads[static_cast<size_t>(i)], 0),
                   "disk put");
  }
  double write_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - write_start)
                        .count();

  auto read_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kPayloads; ++i) {
    auto loaded = store->Get(static_cast<uint64_t>(i + 1));
    bench::CheckOk(loaded.status(), "disk get");
    benchmark::DoNotOptimize(loaded);
  }
  double read_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - read_start)
                       .count();

  double mib = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  JsonWriter json;
  json.BeginObject()
      .KV("bench", "disk_backend_throughput")
      .KV("payloads", kPayloads)
      .KV("total_mib", mib)
      .KV("write_ms", write_ms)
      .KV("write_mib_per_sec", mib / (write_ms / 1000.0))
      .KV("read_ms", read_ms)
      .KV("read_mib_per_sec", mib / (read_ms / 1000.0))
      .KV("est_load_micros_1mib", store->EstimateLoadMicros(1 << 20))
      .EndObject();
  bench::PrintJsonLine(json);
}

}  // namespace
}  // namespace helix

int main(int argc, char** argv) {
  helix::RunShardContention();
  helix::RunDiskThroughput();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  helix::bench::WriteBenchSummary("storage");
  return 0;
}
