// Memory-budget curve: the census workflow run unbudgeted to learn its
// keep-everything *measured* peak (ExecutionReport::peak_resident_bytes —
// the planner's estimate degrades to per-node defaults on cold
// iterations), then re-run from scratch under 50% and 25% of that peak
// (`SessionOptions::memory_budget_bytes`). Claims under test:
//
//   * at the 50% point the measured peak resident bytes stay under the
//     budget (drop-after-last-use + recompute flags do their job; 25% sits
//     below the pipeline's single-step working-set floor and may honestly
//     report over-budget);
//   * outputs are bit-identical to the unbudgeted run — the budget
//     changes *when* intermediates live, never *what* is computed;
//   * the price of fitting the budget is reported, not hidden:
//     recompute_extra_micros / num_dropped land in BENCH_memory.json.
//
// Each budget point runs in a fresh workspace so materialized state from
// one configuration can never subsidize another.
//
// Usage: bench_memory [--rows=1000000] [--epochs=2]
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/census_app.h"
#include "bench/bench_util.h"
#include "common/json.h"
#include "common/strings.h"
#include "core/session.h"
#include "datagen/census_gen.h"

namespace helix {
namespace bench {
namespace {

struct BudgetPoint {
  std::string label;           // "unbudgeted" | "50pct" | "25pct"
  int64_t budget_bytes = 0;    // 0 = memory planning off
  // Per-iteration results.
  std::vector<int64_t> iteration_micros;
  std::vector<int64_t> planned_peak_bytes;
  std::vector<int64_t> unbudgeted_peak_bytes;
  std::vector<int64_t> peak_resident_bytes;
  std::vector<int64_t> recompute_extra_micros;
  std::vector<int> num_dropped;
  std::vector<bool> feasible;
  // Output fingerprints per iteration, keyed by output name.
  std::vector<std::map<std::string, uint64_t>> fingerprints;
};

std::map<std::string, uint64_t> Fingerprints(
    const core::ExecutionReport& report) {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, data] : report.outputs) {
    out[name] = data.Fingerprint();
  }
  return out;
}

BudgetPoint RunPoint(const std::string& label, int64_t budget_bytes,
                     const TempWorkspace& workspace, const std::string& train,
                     const std::string& test, int64_t epochs,
                     const std::vector<apps::ScriptedIteration>& script) {
  core::SessionOptions options;
  options.workspace_dir = workspace.Path("ws-" + label);
  options.storage_budget_bytes = 1LL << 30;
  options.memory_budget_bytes = budget_bytes;
  auto session = ValueOrDie(core::Session::Open(options), "open session");

  apps::CensusConfig config;
  config.train_path = train;
  config.test_path = test;
  config.learner.epochs = static_cast<int>(epochs);

  BudgetPoint point;
  point.label = label;
  point.budget_bytes = budget_bytes;
  for (const auto& step : script) {
    step.mutate(&config);
    auto result = ValueOrDie(
        session->RunIteration(apps::BuildCensusWorkflow(config),
                              step.description, step.category),
        "iteration");
    const core::ExecutionReport& report = result.report;
    point.iteration_micros.push_back(report.total_micros);
    point.planned_peak_bytes.push_back(report.planned_peak_bytes);
    point.unbudgeted_peak_bytes.push_back(report.unbudgeted_peak_bytes);
    point.peak_resident_bytes.push_back(report.peak_resident_bytes);
    point.recompute_extra_micros.push_back(report.recompute_extra_micros);
    point.num_dropped.push_back(report.num_dropped);
    point.feasible.push_back(report.memory_feasible);
    point.fingerprints.push_back(Fingerprints(report));
  }
  return point;
}

void Run(int64_t rows, int64_t epochs) {
  TempWorkspace workspace("helix-bench-memory");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = rows;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  // Two iterations: the initial run plus one ML edit (a budget must hold
  // on cold and warm iterations alike).
  auto full_script = apps::MakeCensusIterationScript();
  std::vector<apps::ScriptedIteration> script(
      full_script.begin(),
      full_script.begin() + std::min<size_t>(2, full_script.size()));

  std::fprintf(stderr, "probing unbudgeted peak (%lld rows)...\n",
               static_cast<long long>(rows));
  BudgetPoint probe =
      RunPoint("unbudgeted", 0, workspace, train, test, epochs, script);
  // Budgets derive from the probe's *measured* keep-everything peak, not
  // the planner's estimate: a cold iteration's estimate degrades to
  // per-node defaults and would make "50% of peak" a fiction.
  int64_t peak = 0;
  for (int64_t p : probe.peak_resident_bytes) {
    peak = std::max(peak, p);
  }

  std::vector<BudgetPoint> points;
  points.push_back(std::move(probe));
  for (auto [label, fraction] :
       {std::pair<const char*, int>{"50pct", 2},
        std::pair<const char*, int>{"25pct", 4}}) {
    std::fprintf(stderr, "running %s budget...\n", label);
    points.push_back(RunPoint(label, peak / fraction, workspace, train, test,
                              epochs, script));
  }

  std::printf("\nMemory-budget curve: census, %lld rows, %zu iterations "
              "(unbudgeted peak %lld bytes)\n",
              static_cast<long long>(rows), script.size(),
              static_cast<long long>(peak));
  std::printf("%-11s %14s %14s %14s %12s %8s %8s %10s\n", "budget", "bytes",
              "measured_peak", "planned_est", "extra_ms", "dropped",
              "in_budget", "identical");
  const BudgetPoint& reference = points[0];
  for (const BudgetPoint& point : points) {
    bool identical = point.fingerprints == reference.fingerprints;
    int64_t planned = 0;
    int64_t measured = 0;
    int64_t extra = 0;
    int dropped = 0;
    bool plan_feasible = true;
    for (size_t i = 0; i < point.iteration_micros.size(); ++i) {
      planned = std::max(planned, point.planned_peak_bytes[i]);
      measured = std::max(measured, point.peak_resident_bytes[i]);
      extra += point.recompute_extra_micros[i];
      dropped += point.num_dropped[i];
      plan_feasible = plan_feasible && point.feasible[i];
    }
    // The headline verdict: measured peak resident bytes under budget.
    bool in_budget = point.budget_bytes <= 0 || measured <= point.budget_bytes;
    std::printf("%-11s %14lld %14lld %14lld %12.1f %8d %8s %10s\n",
                point.label.c_str(),
                static_cast<long long>(point.budget_bytes),
                static_cast<long long>(measured),
                static_cast<long long>(planned),
                static_cast<double>(extra) / 1e3, dropped,
                in_budget ? "yes" : "no", identical ? "yes" : "no");

    JsonWriter json;
    json.BeginObject();
    json.KV("record", "memory_budget_point");
    json.KV("label", point.label);
    json.KV("rows", rows);
    json.KV("budget_bytes", point.budget_bytes);
    json.KV("unbudgeted_peak_bytes", peak);
    json.KV("max_peak_resident_bytes", measured);
    json.KV("max_planned_peak_bytes", planned);
    json.KV("recompute_extra_micros", extra);
    json.KV("num_dropped", dropped);
    json.KV("in_budget", in_budget);
    json.KV("plan_feasible", plan_feasible);
    json.KV("outputs_identical", identical);
    json.Key("iteration_micros").BeginArray();
    for (int64_t micros : point.iteration_micros) {
      json.Int(micros);
    }
    json.EndArray();
    json.EndObject();
    PrintJsonLine(json);

    // The acceptance claims, enforced loudly (benchmarks have no test
    // runner to fail for them).
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL %s outputs diverged from the unbudgeted run\n",
                   point.label.c_str());
      std::abort();
    }
    if (point.budget_bytes >= peak / 2 && !in_budget) {
      // 50% of the keep-everything peak must be schedulable on this
      // pipeline; looser budgets even more so. (Tighter points like 25%
      // may honestly report over-budget — a single step's inputs+output
      // working set is a floor no schedule can cross.)
      std::fprintf(stderr, "FATAL %s measured peak %lld over budget %lld\n",
                   point.label.c_str(), static_cast<long long>(measured),
                   static_cast<long long>(point.budget_bytes));
      std::abort();
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  int64_t rows = 1000000;
  int64_t epochs = 2;
  for (int i = 1; i < argc; ++i) {
    int64_t v;
    if ((v = helix::bench::FlagValue(argv[i], "--rows")) >= 0) {
      rows = v;
    } else if ((v = helix::bench::FlagValue(argv[i], "--epochs")) >= 0) {
      epochs = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  helix::bench::Run(rows, epochs);
  helix::bench::WriteBenchSummary("memory");
  return 0;
}
