// bench_net: what does the wire cost? In-process SessionService vs the
// same service behind loopback TCP (HelixServer + one HelixClient per
// user), same 4-user census workload, fresh workspace per mode. Emits one
// "json,{...}" line per mode with aggregate throughput, p50/p99 iteration
// latency, and the reuse hit rates — if remoting is correct, the hit
// rates match and only the latency overhead differs.
//
// Usage: bench_net [--users=4] [--iterations=6] [--rows=4000] [--threads=0]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/census_app.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/json.h"
#include "core/materialization.h"
#include "datagen/census_gen.h"
#include "net/app_specs.h"
#include "net/client.h"
#include "net/server.h"
#include "service/session_service.h"

namespace helix {
namespace bench {
namespace {

struct Config {
  int users = 4;
  int iterations = 6;
  int64_t rows = 4000;
  int threads = 0;
};

struct ModeResult {
  std::vector<int64_t> latencies_micros;  // all users, sorted
  service::SessionCounters totals;
  int64_t wall_micros = 0;
};

// Runs one user's census script, timing each iteration through `run`.
template <typename RunFn>
void DriveUser(const Config& config, const std::string& train,
               const std::string& test, RunFn run,
               std::vector<int64_t>* latencies) {
  apps::CensusConfig census;
  census.train_path = train;
  census.test_path = test;
  census.learner.epochs = 6;
  auto script = apps::MakeCensusIterationScript();
  for (int i = 0; i < config.iterations; ++i) {
    const auto& step = script[static_cast<size_t>(i) % script.size()];
    step.mutate(&census);
    int64_t start = SystemClock::Default()->NowMicros();
    CheckOk(run(census, step.description, step.category), "iteration");
    latencies->push_back(SystemClock::Default()->NowMicros() - start);
  }
}

ModeResult RunInProcess(const Config& config, const std::string& workspace,
                        const std::string& train, const std::string& test) {
  service::ServiceOptions options;
  options.workspace_dir = workspace;
  options.num_threads = config.threads > 0 ? config.threads : config.users;
  auto service = ValueOrDie(service::SessionService::Open(options),
                            "open service");
  std::vector<service::ServiceSession*> sessions;
  for (int u = 0; u < config.users; ++u) {
    sessions.push_back(ValueOrDie(
        service->CreateSession("user-" + std::to_string(u)), "session"));
  }
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(config.users));
  std::vector<std::thread> users;
  int64_t wall_start = SystemClock::Default()->NowMicros();
  for (int u = 0; u < config.users; ++u) {
    users.emplace_back([&, u]() {
      DriveUser(config, train, test,
                [&, u](const apps::CensusConfig& census,
                       const std::string& description,
                       core::ChangeCategory category) -> Status {
                  auto result =
                      service
                          ->SubmitIteration(
                              sessions[static_cast<size_t>(u)],
                              apps::BuildCensusWorkflow(census),
                              description, category)
                          .get();
                  return result.ok() ? Status::OK() : result.status();
                },
                &latencies[static_cast<size_t>(u)]);
    });
  }
  for (std::thread& t : users) {
    t.join();
  }
  ModeResult mode;
  mode.wall_micros = SystemClock::Default()->NowMicros() - wall_start;
  mode.totals = service->AggregateCounters();
  for (const auto& user : latencies) {
    mode.latencies_micros.insert(mode.latencies_micros.end(), user.begin(),
                                 user.end());
  }
  std::sort(mode.latencies_micros.begin(), mode.latencies_micros.end());
  return mode;
}

ModeResult RunOverTcp(const Config& config, const std::string& workspace,
                      const std::string& train, const std::string& test) {
  net::ServerOptions options;
  options.service.workspace_dir = workspace;
  options.service.num_threads =
      config.threads > 0 ? config.threads : config.users;
  auto server = ValueOrDie(
      net::HelixServer::Start(options, net::MakeStandardResolver()),
      "start server");
  std::vector<std::unique_ptr<net::HelixClient>> clients;
  std::vector<uint64_t> sessions;
  for (int u = 0; u < config.users; ++u) {
    clients.push_back(ValueOrDie(
        net::HelixClient::Connect("127.0.0.1", server->port()), "connect"));
    sessions.push_back(ValueOrDie(
        clients.back()->OpenSession("user-" + std::to_string(u)),
        "open session"));
  }
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(config.users));
  std::vector<std::thread> users;
  int64_t wall_start = SystemClock::Default()->NowMicros();
  for (int u = 0; u < config.users; ++u) {
    users.emplace_back([&, u]() {
      DriveUser(config, train, test,
                [&, u](const apps::CensusConfig& census,
                       const std::string& description,
                       core::ChangeCategory category) -> Status {
                  auto result =
                      clients[static_cast<size_t>(u)]->RunIteration(
                          sessions[static_cast<size_t>(u)],
                          net::MakeCensusSpec(census), description,
                          category);
                  return result.ok() ? Status::OK() : result.status();
                },
                &latencies[static_cast<size_t>(u)]);
    });
  }
  for (std::thread& t : users) {
    t.join();
  }
  ModeResult mode;
  mode.wall_micros = SystemClock::Default()->NowMicros() - wall_start;
  mode.totals = ValueOrDie(clients[0]->GetCounters(0), "aggregate counters");
  for (const auto& user : latencies) {
    mode.latencies_micros.insert(mode.latencies_micros.end(), user.begin(),
                                 user.end());
  }
  std::sort(mode.latencies_micros.begin(), mode.latencies_micros.end());
  server->Stop();
  return mode;
}

void PrintMode(const Config& config, const char* mode,
               const ModeResult& result) {
  const service::SessionCounters& t = result.totals;
  int64_t reuse = t.num_loaded;
  int64_t cross = t.cross_session_loads + t.num_shared;
  double denom = static_cast<double>(t.num_computed + reuse);
  JsonWriter json;
  json.BeginObject()
      .KV("record", "bench_net")
      .KV("mode", mode)
      .KV("users", static_cast<int64_t>(config.users))
      .KV("iterations_per_user", static_cast<int64_t>(config.iterations))
      .KV("rows", config.rows)
      .KV("wall_ms", static_cast<double>(result.wall_micros) / 1e3)
      .KV("throughput_iters_per_sec",
          result.wall_micros > 0
              ? static_cast<double>(t.iterations) * 1e6 /
                    static_cast<double>(result.wall_micros)
              : 0)
      .KV("p50_ms", PercentileSorted(result.latencies_micros, 0.5) / 1e3)
      .KV("p99_ms", PercentileSorted(result.latencies_micros, 0.99) / 1e3)
      .KV("num_computed", t.num_computed)
      .KV("num_loaded", t.num_loaded)
      .KV("num_shared", t.num_shared)
      .KV("cross_session_loads", t.cross_session_loads)
      .KV("hit_rate", denom > 0 ? static_cast<double>(reuse) / denom : 0)
      .KV("cross_session_hit_rate",
          denom > 0 ? static_cast<double>(cross) / denom : 0)
      .EndObject();
  PrintJsonLine(json);
}

// Cache-hit reply throughput: one warm iteration materializes every
// output server-side, then the client fetches the largest one in a tight
// loop. The server's store Get is a memory hit, so the measured rate is
// the reply path itself — with zero_copy the payload goes straight from
// the stored columns' buffers into one writev; without it the server
// flattens the envelope into a contiguous string first. Emits one
// "json,{...}" row per mode; the delta is the memcpy the span path
// skipped.
void RunFetchOutputBench(const Config& config, const std::string& workspace,
                         const std::string& train, const std::string& test) {
  for (bool zero_copy : {true, false}) {
    net::ServerOptions options;
    options.service.workspace_dir =
        workspace + (zero_copy ? "-zc" : "-copy");
    options.service.num_threads = 2;
    options.service.mat_policy =
        std::make_shared<core::AlwaysMaterializePolicy>();
    options.zero_copy_replies = zero_copy;
    auto server = ValueOrDie(
        net::HelixServer::Start(options, net::MakeStandardResolver()),
        "start server");
    auto client = ValueOrDie(
        net::HelixClient::Connect("127.0.0.1", server->port()), "connect");
    uint64_t session = ValueOrDie(client->OpenSession("fetcher"), "session");
    apps::CensusConfig census;
    census.train_path = train;
    census.test_path = test;
    census.learner.epochs = 2;
    auto result = ValueOrDie(
        client->RunIteration(session, net::MakeCensusSpec(census), "warm",
                             core::ChangeCategory::kInitial),
        "warm iteration");
    // Fetch every output once to find the biggest payload (and to fault
    // everything resident).
    uint64_t signature = 0;
    size_t payload_bytes = 0;
    for (const net::RemoteOutput& output : result.outputs) {
      if (output.signature == 0) {
        continue;
      }
      auto data = ValueOrDie(client->FetchOutput(output.signature),
                             "probe fetch");
      size_t size = data.SerializeToString().size();
      if (size > payload_bytes) {
        payload_bytes = size;
        signature = output.signature;
      }
    }
    CheckOk(signature != 0
                ? Status::OK()
                : Status::Internal("no fetchable outputs materialized"),
            "fetch target");
    constexpr int kFetches = 64;
    int64_t start = SystemClock::Default()->NowMicros();
    for (int i = 0; i < kFetches; ++i) {
      auto data = ValueOrDie(client->FetchOutput(signature), "fetch");
      (void)data;
    }
    int64_t wall = SystemClock::Default()->NowMicros() - start;
    double total_bytes = static_cast<double>(payload_bytes) * kFetches;
    JsonWriter json;
    json.BeginObject()
        .KV("record", "bench_net")
        .KV("mode", zero_copy ? "fetch_zero_copy" : "fetch_copy")
        .KV("rows", config.rows)
        .KV("payload_bytes", static_cast<int64_t>(payload_bytes))
        .KV("fetches", static_cast<int64_t>(kFetches))
        .KV("wall_ms", static_cast<double>(wall) / 1e3)
        .KV("bytes_per_sec",
            wall > 0 ? total_bytes * 1e6 / static_cast<double>(wall) : 0)
        .EndObject();
    PrintJsonLine(json);
    server->Stop();
  }
}

void Run(const Config& config) {
  TempWorkspace workspace("helix-bench-net");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = config.rows;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  ModeResult inproc =
      RunInProcess(config, workspace.Path("ws-inproc"), train, test);
  PrintMode(config, "inproc", inproc);
  ModeResult tcp = RunOverTcp(config, workspace.Path("ws-tcp"), train, test);
  PrintMode(config, "tcp", tcp);
  RunFetchOutputBench(config, workspace.Path("ws-fetch"), train, test);

  double ratio = tcp.wall_micros > 0
                     ? static_cast<double>(inproc.wall_micros) /
                           static_cast<double>(tcp.wall_micros)
                     : 0;
  std::printf("loopback TCP at %.2fx the in-process aggregate throughput\n",
              ratio);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  helix::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t v;
    if ((v = helix::bench::FlagValue(arg, "--users")) >= 0) {
      config.users = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--iterations")) >= 0) {
      config.iterations = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--rows")) >= 0) {
      config.rows = v;
    } else if ((v = helix::bench::FlagValue(arg, "--threads")) >= 0) {
      config.threads = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  helix::bench::Run(config);
  helix::bench::WriteBenchSummary("net");
  return 0;
}
