// bench_net: what does the wire cost? In-process SessionService vs the
// same service behind loopback TCP (HelixServer + one HelixClient per
// user), same 4-user census workload, fresh workspace per mode. Emits one
// "json,{...}" line per mode with aggregate throughput, p50/p99 iteration
// latency, and the reuse hit rates — if remoting is correct, the hit
// rates match and only the latency overhead differs.
//
// Also emits the transport scaling curve (1/10/100/1000 concurrent
// connections x {event loop, thread-per-connection}, with the process
// thread count as evidence of the event loop's flat thread model) and a
// serial-vs-pipelined RPC row for the async multiplexing client.
//
// Usage: bench_net [--users=4] [--iterations=6] [--rows=4000] [--threads=0]
//                  [--max-clients=1000]
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/census_app.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/json.h"
#include "core/materialization.h"
#include "datagen/census_gen.h"
#include "net/app_specs.h"
#include "net/client.h"
#include "net/server.h"
#include "service/session_service.h"

namespace helix {
namespace bench {
namespace {

struct Config {
  int users = 4;
  int iterations = 6;
  int64_t rows = 4000;
  int threads = 0;
  /// Largest point on the connection-scaling curve.
  int max_clients = 1000;
};

struct ModeResult {
  std::vector<int64_t> latencies_micros;  // all users, sorted
  service::SessionCounters totals;
  int64_t wall_micros = 0;
};

// Runs one user's census script, timing each iteration through `run`.
template <typename RunFn>
void DriveUser(const Config& config, const std::string& train,
               const std::string& test, RunFn run,
               std::vector<int64_t>* latencies) {
  apps::CensusConfig census;
  census.train_path = train;
  census.test_path = test;
  census.learner.epochs = 6;
  auto script = apps::MakeCensusIterationScript();
  for (int i = 0; i < config.iterations; ++i) {
    const auto& step = script[static_cast<size_t>(i) % script.size()];
    step.mutate(&census);
    int64_t start = SystemClock::Default()->NowMicros();
    CheckOk(run(census, step.description, step.category), "iteration");
    latencies->push_back(SystemClock::Default()->NowMicros() - start);
  }
}

ModeResult RunInProcess(const Config& config, const std::string& workspace,
                        const std::string& train, const std::string& test) {
  service::ServiceOptions options;
  options.workspace_dir = workspace;
  options.num_threads = config.threads > 0 ? config.threads : config.users;
  auto service = ValueOrDie(service::SessionService::Open(options),
                            "open service");
  std::vector<service::ServiceSession*> sessions;
  for (int u = 0; u < config.users; ++u) {
    sessions.push_back(ValueOrDie(
        service->CreateSession("user-" + std::to_string(u)), "session"));
  }
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(config.users));
  std::vector<std::thread> users;
  int64_t wall_start = SystemClock::Default()->NowMicros();
  for (int u = 0; u < config.users; ++u) {
    users.emplace_back([&, u]() {
      DriveUser(config, train, test,
                [&, u](const apps::CensusConfig& census,
                       const std::string& description,
                       core::ChangeCategory category) -> Status {
                  auto result =
                      service
                          ->SubmitIteration(
                              sessions[static_cast<size_t>(u)],
                              apps::BuildCensusWorkflow(census),
                              description, category)
                          .get();
                  return result.ok() ? Status::OK() : result.status();
                },
                &latencies[static_cast<size_t>(u)]);
    });
  }
  for (std::thread& t : users) {
    t.join();
  }
  ModeResult mode;
  mode.wall_micros = SystemClock::Default()->NowMicros() - wall_start;
  mode.totals = service->AggregateCounters();
  for (const auto& user : latencies) {
    mode.latencies_micros.insert(mode.latencies_micros.end(), user.begin(),
                                 user.end());
  }
  std::sort(mode.latencies_micros.begin(), mode.latencies_micros.end());
  return mode;
}

ModeResult RunOverTcp(const Config& config, const std::string& workspace,
                      const std::string& train, const std::string& test) {
  net::ServerOptions options;
  options.service.workspace_dir = workspace;
  options.service.num_threads =
      config.threads > 0 ? config.threads : config.users;
  auto server = ValueOrDie(
      net::HelixServer::Start(options, net::MakeStandardResolver()),
      "start server");
  std::vector<std::unique_ptr<net::HelixClient>> clients;
  std::vector<uint64_t> sessions;
  for (int u = 0; u < config.users; ++u) {
    clients.push_back(ValueOrDie(
        net::HelixClient::Connect("127.0.0.1", server->port()), "connect"));
    sessions.push_back(ValueOrDie(
        clients.back()->OpenSession("user-" + std::to_string(u)),
        "open session"));
  }
  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(config.users));
  std::vector<std::thread> users;
  int64_t wall_start = SystemClock::Default()->NowMicros();
  for (int u = 0; u < config.users; ++u) {
    users.emplace_back([&, u]() {
      DriveUser(config, train, test,
                [&, u](const apps::CensusConfig& census,
                       const std::string& description,
                       core::ChangeCategory category) -> Status {
                  auto result =
                      clients[static_cast<size_t>(u)]->RunIteration(
                          sessions[static_cast<size_t>(u)],
                          net::MakeCensusSpec(census), description,
                          category);
                  return result.ok() ? Status::OK() : result.status();
                },
                &latencies[static_cast<size_t>(u)]);
    });
  }
  for (std::thread& t : users) {
    t.join();
  }
  ModeResult mode;
  mode.wall_micros = SystemClock::Default()->NowMicros() - wall_start;
  mode.totals = ValueOrDie(clients[0]->GetCounters(0), "aggregate counters");
  for (const auto& user : latencies) {
    mode.latencies_micros.insert(mode.latencies_micros.end(), user.begin(),
                                 user.end());
  }
  std::sort(mode.latencies_micros.begin(), mode.latencies_micros.end());
  server->Stop();
  return mode;
}

void PrintMode(const Config& config, const char* mode,
               const ModeResult& result) {
  const service::SessionCounters& t = result.totals;
  int64_t reuse = t.num_loaded;
  int64_t cross = t.cross_session_loads + t.num_shared;
  double denom = static_cast<double>(t.num_computed + reuse);
  JsonWriter json;
  json.BeginObject()
      .KV("record", "bench_net")
      .KV("mode", mode)
      .KV("users", static_cast<int64_t>(config.users))
      .KV("iterations_per_user", static_cast<int64_t>(config.iterations))
      .KV("rows", config.rows)
      .KV("wall_ms", static_cast<double>(result.wall_micros) / 1e3)
      .KV("throughput_iters_per_sec",
          result.wall_micros > 0
              ? static_cast<double>(t.iterations) * 1e6 /
                    static_cast<double>(result.wall_micros)
              : 0)
      .KV("p50_ms", PercentileSorted(result.latencies_micros, 0.5) / 1e3)
      .KV("p99_ms", PercentileSorted(result.latencies_micros, 0.99) / 1e3)
      .KV("num_computed", t.num_computed)
      .KV("num_loaded", t.num_loaded)
      .KV("num_shared", t.num_shared)
      .KV("cross_session_loads", t.cross_session_loads)
      .KV("hit_rate", denom > 0 ? static_cast<double>(reuse) / denom : 0)
      .KV("cross_session_hit_rate",
          denom > 0 ? static_cast<double>(cross) / denom : 0)
      .EndObject();
  PrintJsonLine(json);
}

// Cache-hit reply throughput: one warm iteration materializes every
// output server-side, then the client fetches the largest one in a tight
// loop. The server's store Get is a memory hit, so the measured rate is
// the reply path itself — with zero_copy the payload goes straight from
// the stored columns' buffers into one writev; without it the server
// flattens the envelope into a contiguous string first. Emits one
// "json,{...}" row per mode; the delta is the memcpy the span path
// skipped.
void RunFetchOutputBench(const Config& config, const std::string& workspace,
                         const std::string& train, const std::string& test) {
  for (bool zero_copy : {true, false}) {
    net::ServerOptions options;
    options.service.workspace_dir =
        workspace + (zero_copy ? "-zc" : "-copy");
    options.service.num_threads = 2;
    options.service.mat_policy =
        std::make_shared<core::AlwaysMaterializePolicy>();
    options.zero_copy_replies = zero_copy;
    auto server = ValueOrDie(
        net::HelixServer::Start(options, net::MakeStandardResolver()),
        "start server");
    auto client = ValueOrDie(
        net::HelixClient::Connect("127.0.0.1", server->port()), "connect");
    uint64_t session = ValueOrDie(client->OpenSession("fetcher"), "session");
    apps::CensusConfig census;
    census.train_path = train;
    census.test_path = test;
    census.learner.epochs = 2;
    auto result = ValueOrDie(
        client->RunIteration(session, net::MakeCensusSpec(census), "warm",
                             core::ChangeCategory::kInitial),
        "warm iteration");
    // Fetch every output once to find the biggest payload (and to fault
    // everything resident).
    uint64_t signature = 0;
    size_t payload_bytes = 0;
    for (const net::RemoteOutput& output : result.outputs) {
      if (output.signature == 0) {
        continue;
      }
      auto data = ValueOrDie(client->FetchOutput(output.signature),
                             "probe fetch");
      size_t size = data.SerializeToString().size();
      if (size > payload_bytes) {
        payload_bytes = size;
        signature = output.signature;
      }
    }
    CheckOk(signature != 0
                ? Status::OK()
                : Status::Internal("no fetchable outputs materialized"),
            "fetch target");
    constexpr int kFetches = 64;
    int64_t start = SystemClock::Default()->NowMicros();
    for (int i = 0; i < kFetches; ++i) {
      auto data = ValueOrDie(client->FetchOutput(signature), "fetch");
      (void)data;
    }
    int64_t wall = SystemClock::Default()->NowMicros() - start;
    double total_bytes = static_cast<double>(payload_bytes) * kFetches;
    JsonWriter json;
    json.BeginObject()
        .KV("record", "bench_net")
        .KV("mode", zero_copy ? "fetch_zero_copy" : "fetch_copy")
        .KV("rows", config.rows)
        .KV("payload_bytes", static_cast<int64_t>(payload_bytes))
        .KV("fetches", static_cast<int64_t>(kFetches))
        .KV("wall_ms", static_cast<double>(wall) / 1e3)
        .KV("bytes_per_sec",
            wall > 0 ? total_bytes * 1e6 / static_cast<double>(wall) : 0)
        .EndObject();
    PrintJsonLine(json);
    server->Stop();
  }
}

// Lifts RLIMIT_NOFILE to its hard cap so the 1000-connection point (two
// fds per client: one in the client, one in the server, same process)
// does not trip the default soft limit.
void RaiseFdLimit() {
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
  }
}

// Current thread count of this process (server and clients together),
// from /proc/self/status. -1 when unreadable.
int ReadThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return -1;
  }
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = std::atoi(line + 8);
      break;
    }
  }
  std::fclose(f);
  return threads;
}

// One point on the scaling curve: N concurrent connections sharing a
// fixed call budget of small GetCounters RPCs — the cost of carrying
// connections, not of running workflows. The thread count is sampled
// with all N connected: in event-loop mode it stays flat as N grows
// (io_threads + pool + the clients' own receivers); in thread mode it
// grows by one reader per connection.
void RunScalingCell(const std::string& workspace, bool event_loop,
                    int num_clients) {
  net::ServerOptions options;
  options.event_loop = event_loop;
  options.service.workspace_dir = workspace;
  options.service.num_threads = 2;
  // This bench measures transport capacity, not shedding: lift the
  // backpressure bounds out of the way.
  options.max_inflight_per_connection = 1 << 20;
  options.max_inflight_total = 1 << 20;
  auto server = ValueOrDie(
      net::HelixServer::Start(options, net::MakeStandardResolver()),
      "start server");
  std::vector<std::unique_ptr<net::HelixClient>> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.push_back(ValueOrDie(
        net::HelixClient::Connect("127.0.0.1", server->port()), "connect"));
  }
  int threads_connected = ReadThreadCount();

  const int calls_per_client = std::max(1, 4000 / num_clients);
  const int total = calls_per_client * num_clients;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<int> failed{0};
  int64_t start = SystemClock::Default()->NowMicros();
  for (auto& client : clients) {
    for (int i = 0; i < calls_per_client; ++i) {
      client->GetCountersAsync(
          0, [&](Result<service::SessionCounters> reply) {
            if (!reply.ok()) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
            std::lock_guard<std::mutex> lock(mu);
            ++done;
            cv.notify_all();
          });
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return done == total; });
  }
  int64_t wall = SystemClock::Default()->NowMicros() - start;
  CheckOk(failed.load() == 0
              ? Status::OK()
              : Status::Internal(std::to_string(failed.load()) +
                                 " scaling calls failed"),
          "scaling calls");
  JsonWriter json;
  json.BeginObject()
      .KV("record", "bench_net")
      .KV("mode", event_loop ? "scaling_event_loop" : "scaling_threaded")
      .KV("clients", static_cast<int64_t>(num_clients))
      .KV("calls", static_cast<int64_t>(total))
      .KV("threads_at_peak", static_cast<int64_t>(threads_connected))
      .KV("wall_ms", static_cast<double>(wall) / 1e3)
      .KV("calls_per_sec",
          wall > 0 ? static_cast<double>(total) * 1e6 /
                         static_cast<double>(wall)
                   : 0)
      .EndObject();
  PrintJsonLine(json);
  server->Stop();
}

void RunScalingBench(const Config& config, const std::string& workspace) {
  RaiseFdLimit();
  const int points[] = {1, 10, 100, 1000};
  for (bool event_loop : {true, false}) {
    for (int clients : points) {
      if (clients > config.max_clients) {
        continue;
      }
      RunScalingCell(workspace + (event_loop ? "-ev-" : "-th-") +
                         std::to_string(clients),
                     event_loop, clients);
    }
  }
}

// Serial vs pipelined RPC on ONE connection: the same 2000 GetCounters
// calls issued one-at-a-time (each waiting its reply) and then issued
// through the async interface with a window of 32 in flight. The ratio
// is what multiplexing buys a chatty client over loopback.
void RunPipelineBench(const std::string& workspace) {
  net::ServerOptions options;
  options.service.workspace_dir = workspace;
  options.service.num_threads = 2;
  auto server = ValueOrDie(
      net::HelixServer::Start(options, net::MakeStandardResolver()),
      "start server");
  auto client = ValueOrDie(
      net::HelixClient::Connect("127.0.0.1", server->port()), "connect");
  constexpr int kCalls = 2000;
  constexpr int kWindow = 32;

  int64_t start = SystemClock::Default()->NowMicros();
  for (int i = 0; i < kCalls; ++i) {
    ValueOrDie(client->GetCounters(0), "serial call");
  }
  int64_t serial_wall = SystemClock::Default()->NowMicros() - start;

  std::mutex mu;
  std::condition_variable cv;
  int inflight = 0;
  int done = 0;
  std::atomic<int> failed{0};
  start = SystemClock::Default()->NowMicros();
  for (int i = 0; i < kCalls; ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&]() { return inflight < kWindow; });
      ++inflight;
    }
    client->GetCountersAsync(
        0, [&](Result<service::SessionCounters> reply) {
          if (!reply.ok()) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          std::lock_guard<std::mutex> lock(mu);
          --inflight;
          ++done;
          cv.notify_all();
        });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return done == kCalls; });
  }
  int64_t pipelined_wall = SystemClock::Default()->NowMicros() - start;
  CheckOk(failed.load() == 0
              ? Status::OK()
              : Status::Internal("pipelined calls failed"),
          "pipelined calls");
  for (bool pipelined : {false, true}) {
    int64_t wall = pipelined ? pipelined_wall : serial_wall;
    JsonWriter json;
    json.BeginObject()
        .KV("record", "bench_net")
        .KV("mode", pipelined ? "rpc_pipelined" : "rpc_serial")
        .KV("calls", static_cast<int64_t>(kCalls))
        .KV("window", static_cast<int64_t>(pipelined ? kWindow : 1))
        .KV("wall_ms", static_cast<double>(wall) / 1e3)
        .KV("calls_per_sec",
            wall > 0 ? static_cast<double>(kCalls) * 1e6 /
                           static_cast<double>(wall)
                     : 0)
        .EndObject();
    PrintJsonLine(json);
  }
  server->Stop();
}

void Run(const Config& config) {
  TempWorkspace workspace("helix-bench-net");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = config.rows;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  ModeResult inproc =
      RunInProcess(config, workspace.Path("ws-inproc"), train, test);
  PrintMode(config, "inproc", inproc);
  ModeResult tcp = RunOverTcp(config, workspace.Path("ws-tcp"), train, test);
  PrintMode(config, "tcp", tcp);
  RunFetchOutputBench(config, workspace.Path("ws-fetch"), train, test);
  RunPipelineBench(workspace.Path("ws-pipeline"));
  RunScalingBench(config, workspace.Path("ws-scale"));

  double ratio = tcp.wall_micros > 0
                     ? static_cast<double>(inproc.wall_micros) /
                           static_cast<double>(tcp.wall_micros)
                     : 0;
  std::printf("loopback TCP at %.2fx the in-process aggregate throughput\n",
              ratio);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  helix::bench::Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    int64_t v;
    if ((v = helix::bench::FlagValue(arg, "--users")) >= 0) {
      config.users = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--iterations")) >= 0) {
      config.iterations = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--rows")) >= 0) {
      config.rows = v;
    } else if ((v = helix::bench::FlagValue(arg, "--threads")) >= 0) {
      config.threads = static_cast<int>(v);
    } else if ((v = helix::bench::FlagValue(arg, "--max-clients")) >= 0) {
      config.max_clients = static_cast<int>(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }
  helix::bench::Run(config);
  helix::bench::WriteBenchSummary("net");
  return 0;
}
