// Multi-session service benchmark: K concurrent users running the census
// workload over ONE shared store/service versus K fully isolated stores.
//
// The multi-tenant claim under test (arXiv:1804.05892's cross-session
// reuse direction): when every user iterates on the same workflow, the
// shared store computes each intermediate roughly once *globally* while
// isolated stores compute it once *per user* — so aggregate throughput
// scales with the user count. Reported as "json," lines:
//   * one line per mode with wall time, throughput, p50/p99 iteration
//     latency, and reuse counters;
//   * one summary line with the shared/isolated speedup and the
//     cross-session hit rate (loads + in-flight shares of results this
//     session never computed, over all node resolutions).
//
// Usage: bench_service [--users=4] [--iterations=6] [--rows=4000]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/census_app.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/json.h"
#include "datagen/census_gen.h"
#include "service/session_service.h"

namespace helix {
namespace bench {
namespace {

struct ModeResult {
  double wall_ms = 0;
  double throughput = 0;  // iterations/sec, all users
  double p50_ms = 0;
  double p99_ms = 0;
  service::SessionCounters totals;
};

double PercentileMs(std::vector<int64_t> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(index, sorted.size() - 1)]) /
         1e3;
}

ModeResult RunMode(bool shared, int users, int iterations,
                   const TempWorkspace& workspace, const std::string& train,
                   const std::string& test) {
  std::vector<std::unique_ptr<service::SessionService>> services;
  std::string tag = shared ? "shared" : "isolated";
  if (shared) {
    service::ServiceOptions options;
    options.workspace_dir = workspace.Path("ws-" + tag);
    options.num_threads = users;
    services.push_back(
        ValueOrDie(service::SessionService::Open(options), "open service"));
  } else {
    for (int u = 0; u < users; ++u) {
      service::ServiceOptions options;
      options.workspace_dir =
          workspace.Path("ws-" + tag + "-" + std::to_string(u));
      options.num_threads = 1;
      services.push_back(
          ValueOrDie(service::SessionService::Open(options), "open service"));
    }
  }

  auto script = apps::MakeCensusIterationScript();
  std::vector<std::vector<int64_t>> latencies(static_cast<size_t>(users));
  std::vector<service::ServiceSession*> sessions;
  for (int u = 0; u < users; ++u) {
    service::SessionService* svc =
        shared ? services[0].get() : services[static_cast<size_t>(u)].get();
    sessions.push_back(ValueOrDie(
        svc->CreateSession("user-" + std::to_string(u)), "create session"));
  }

  std::vector<std::thread> drivers;
  int64_t wall_start = SystemClock::Default()->NowMicros();
  for (int u = 0; u < users; ++u) {
    service::SessionService* svc =
        shared ? services[0].get() : services[static_cast<size_t>(u)].get();
    drivers.emplace_back([&, svc, u]() {
      apps::CensusConfig config;
      config.train_path = train;
      config.test_path = test;
      config.learner.epochs = 8;
      for (int i = 0; i < iterations; ++i) {
        const auto& step = script[static_cast<size_t>(i) % script.size()];
        step.mutate(&config);
        int64_t start = SystemClock::Default()->NowMicros();
        auto result =
            svc->SubmitIteration(sessions[static_cast<size_t>(u)],
                                 apps::BuildCensusWorkflow(config),
                                 step.description, step.category)
                .get();
        CheckOk(result.ok() ? Status::OK() : result.status(), "iteration");
        latencies[static_cast<size_t>(u)].push_back(
            SystemClock::Default()->NowMicros() - start);
      }
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  int64_t wall_micros = SystemClock::Default()->NowMicros() - wall_start;

  ModeResult mode;
  mode.wall_ms = static_cast<double>(wall_micros) / 1e3;
  mode.throughput = wall_micros > 0
                        ? static_cast<double>(users) *
                              static_cast<double>(iterations) * 1e6 /
                              static_cast<double>(wall_micros)
                        : 0;
  std::vector<int64_t> all;
  for (const auto& user_latencies : latencies) {
    all.insert(all.end(), user_latencies.begin(), user_latencies.end());
  }
  std::sort(all.begin(), all.end());
  mode.p50_ms = PercentileMs(all, 0.5);
  mode.p99_ms = PercentileMs(all, 0.99);
  for (const auto& svc : services) {
    service::SessionCounters c = svc->AggregateCounters();
    mode.totals.iterations += c.iterations;
    mode.totals.num_computed += c.num_computed;
    mode.totals.num_loaded += c.num_loaded;
    mode.totals.num_shared += c.num_shared;
    mode.totals.cross_session_loads += c.cross_session_loads;
    mode.totals.saved_micros += c.saved_micros;
  }

  JsonWriter json;
  json.BeginObject()
      .KV("record", "bench_service_mode")
      .KV("mode", tag)
      .KV("users", static_cast<int64_t>(users))
      .KV("iterations_per_user", static_cast<int64_t>(iterations))
      .KV("wall_ms", mode.wall_ms)
      .KV("throughput_iters_per_sec", mode.throughput)
      .KV("p50_ms", mode.p50_ms)
      .KV("p99_ms", mode.p99_ms)
      .KV("num_computed", mode.totals.num_computed)
      .KV("num_loaded", mode.totals.num_loaded)
      .KV("num_shared", mode.totals.num_shared)
      .KV("cross_session_loads", mode.totals.cross_session_loads)
      .KV("saved_ms", static_cast<double>(mode.totals.saved_micros) / 1e3)
      .EndObject();
  PrintJsonLine(json);
  return mode;
}

void Run(int users, int iterations, int64_t rows) {
  TempWorkspace workspace("helix-bench-service");
  std::string train = workspace.Path("census.train.csv");
  std::string test = workspace.Path("census.test.csv");
  datagen::CensusGenOptions gen;
  gen.num_rows = rows;
  CheckOk(datagen::WriteCensusFiles(gen, train, test), "census datagen");

  std::fprintf(stderr, "running isolated mode (%d users x %d iterations)\n",
               users, iterations);
  ModeResult isolated =
      RunMode(/*shared=*/false, users, iterations, workspace, train, test);
  std::fprintf(stderr, "running shared mode (%d users x %d iterations)\n",
               users, iterations);
  ModeResult shared =
      RunMode(/*shared=*/true, users, iterations, workspace, train, test);

  int64_t resolutions =
      shared.totals.num_computed + shared.totals.num_loaded;
  int64_t cross =
      shared.totals.cross_session_loads + shared.totals.num_shared;
  double cross_rate = resolutions > 0 ? static_cast<double>(cross) /
                                            static_cast<double>(resolutions)
                                      : 0;
  double speedup = isolated.wall_ms > 0 && shared.wall_ms > 0
                       ? isolated.wall_ms / shared.wall_ms
                       : 0;
  JsonWriter json;
  json.BeginObject()
      .KV("record", "bench_service_summary")
      .KV("users", static_cast<int64_t>(users))
      .KV("iterations_per_user", static_cast<int64_t>(iterations))
      .KV("rows", rows)
      .KV("isolated_wall_ms", isolated.wall_ms)
      .KV("shared_wall_ms", shared.wall_ms)
      .KV("throughput_speedup", speedup)
      .KV("cross_session_hit_rate", cross_rate)
      .KV("isolated_computed", isolated.totals.num_computed)
      .KV("shared_computed", shared.totals.num_computed)
      .EndObject();
  PrintJsonLine(json);
  std::printf("summary: shared %.1fms vs isolated %.1fms -> %.2fx "
              "aggregate throughput, cross-session hit rate %.2f\n",
              shared.wall_ms, isolated.wall_ms, speedup, cross_rate);
}

}  // namespace
}  // namespace bench
}  // namespace helix

int main(int argc, char** argv) {
  int users = 4;
  int iterations = 6;
  long long rows = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--users=", 8) == 0) {
      users = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--iterations=", 13) == 0) {
      iterations = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      rows = std::atoll(argv[i] + 7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  helix::bench::Run(users, iterations, rows);
  helix::bench::WriteBenchSummary("service");
  return 0;
}
